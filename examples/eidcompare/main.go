// EID comparison: the paper situates template dependencies inside the
// larger class of embedded implicational dependencies (Chandra, Lewis,
// Makowsky 1981), whose conclusions may be conjunctions. This example runs
// the paper's own EID on the garment schema and demonstrates, with the EID
// chase, that the conjunctive conclusion with a SHARED existential supplier
// is strictly stronger than its two TD projections — which is why the
// paper's TD result strengthens the earlier EID result.
package main

import (
	"fmt"
	"log"
	"templatedep/internal/budget"

	"templatedep/internal/eid"
	"templatedep/internal/relation"
	"templatedep/internal/td"
)

func main() {
	s, paperEID := eid.PaperExample()
	fmt.Println("the paper's EID:", paperEID.Format())
	fmt.Println("  (one supplier covering garment b in BOTH sizes c and c')")
	fmt.Println()

	// Its two TD projections: each conclusion atom with its own supplier.
	projA := eid.FromTD(td.MustParse(s, "R(a, b, c) & R(a, b', c') -> R(x, b, c)", "projA"))
	projB := eid.FromTD(td.MustParse(s, "R(a, b, c) & R(a, b', c') -> R(y, b, c')", "projB"))
	fmt.Println("TD projection A:", projA.Format())
	fmt.Println("TD projection B:", projB.Format())
	fmt.Println()

	// The EID implies both projections...
	for _, goal := range []*eid.EID{projA, projB} {
		res, err := eid.Implies([]*eid.EID{paperEID}, goal, eid.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("EID implies %s: %s\n", goal.Name(), res.Verdict)
	}
	// ...but not conversely.
	res, err := eid.Implies([]*eid.EID{projA, projB}, paperEID, eid.Options{Governor: budget.New(nil, budget.Limits{Rounds: 8, Tuples: 5000})})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("projections imply the EID: %s\n", res.Verdict)
	fmt.Println()

	// A concrete separating database: all projections satisfied, EID not.
	db := relation.NewInstance(s)
	db.MustAdd(relation.Tuple{0, 0, 0}) // supplier0: style0 size0
	db.MustAdd(relation.Tuple{0, 1, 1}) // supplier0: style1 size1
	db.MustAdd(relation.Tuple{1, 0, 1}) // supplier1 covers (style0, size1)
	db.MustAdd(relation.Tuple{2, 1, 0}) // supplier2 covers (style1, size0)
	okA, _ := projA.Satisfies(db)
	okB, _ := projB.Satisfies(db)
	okE, _ := paperEID.Satisfies(db)
	fmt.Printf("separating database (4 tuples): projA=%v projB=%v EID=%v\n", okA, okB, okE)
	fmt.Println("no single supplier covers style0 in both sizes — the shared")
	fmt.Println("existential cannot be split into independent TDs.")
}

// Quickstart: define template dependencies over a typed schema, check
// satisfaction on a concrete database, and run the chase-based inference
// engine — all on the paper's running example, the garment database
// R(SUPPLIER, STYLE, SIZE).
package main

import (
	"fmt"
	"log"

	"templatedep/internal/chase"
	"templatedep/internal/diagram"
	"templatedep/internal/relation"
	"templatedep/internal/td"
)

func main() {
	// The schema. The typing restriction is built in: SUPPLIER values and
	// STYLE values live in disjoint domains.
	schema := relation.MustSchema("SUPPLIER", "STYLE", "SIZE")

	// The paper's Figure 1 dependency: if a supplier supplies both
	// garments of style b and garments of size c', then SOME supplier
	// supplies style b in size c'.
	fig1, err := td.Parse(schema, "R(a, b, c) & R(a, b', c') -> R(a*, b, c')", "fig1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("dependency:", fig1)
	fmt.Println("embedded:", !fig1.IsFull(), " trivial:", fig1.IsTrivial())
	fmt.Println()
	fmt.Println(diagram.FromTD(fig1).ASCII())

	// A concrete database: St. Laurent (0) supplies evening dresses (0)
	// in size 10 (0) and briefs (1) in size 36 (1).
	db := relation.NewInstance(schema)
	db.MustAdd(relation.Tuple{0, 0, 0})
	db.MustAdd(relation.Tuple{0, 1, 1})
	ok, _ := fig1.Satisfies(db)
	fmt.Println("database satisfies fig1:", ok) // false: nobody supplies style 0 in size 1

	// Repair by chasing: close the database under the dependency.
	engine, err := chase.NewEngine(schema, []*td.TD{fig1}, chase.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	res := engine.Chase(db, nil)
	fmt.Printf("chase: fixpoint=%v, %d tuples\n", res.FixpointReached, res.Instance.Len())
	ok, _ = fig1.Satisfies(res.Instance)
	fmt.Println("chased database satisfies fig1:", ok)
	fmt.Println()

	// Inference: does fig1 imply the symmetric variant?
	sym, err := td.Parse(schema, "R(a, b, c) & R(a, b', c') -> R(a*, b', c)", "sym")
	if err != nil {
		log.Fatal(err)
	}
	ires, err := chase.Implies([]*td.TD{fig1}, sym, chase.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fig1 implies %s?  %s\n", sym.Name(), ires.Verdict)
	if ires.Verdict == chase.NotImplied {
		fmt.Println("counterexample database (chase fixpoint):")
		fmt.Print(ires.Instance.String())
	}
}

// Turing: the full undecidability pipeline, end to end. A Turing machine's
// halting problem is encoded as a semigroup word problem (Post/Turing),
// which the Gurevich–Lewis reduction turns into a template-dependency
// inference instance. For a halting machine the equational derivation — and
// hence D |= D0 — is found mechanically; for a diverging machine the
// procedures stay inconclusive, as they must.
package main

import (
	"fmt"
	"log"
	"templatedep/internal/budget"

	"templatedep/internal/reduction"
	"templatedep/internal/tm"
	"templatedep/internal/words"
)

func main() {
	run("write-one-and-halt", tm.WriteOneAndHalt(), nil, 200000)
	run("scan-right over 11", tm.ScanRightAndHalt(), []int{1, 1}, 500000)
	run("run-forever", tm.RunForever(), nil, 20000)
}

func run(name string, m *tm.TM, input []int, wordCap int) {
	fmt.Printf("=== %s ===\n", name)
	halted, steps, _, err := m.Run(input, 1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulation: halted=%v after %d steps\n", halted, steps)

	p, err := tm.EncodePresentation(m, input)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("encoded presentation: %d symbols, %d equations\n",
		p.Alphabet.Size(), len(p.Equations))

	in, err := reduction.Build(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TD instance: %d attributes, |D| = %d dependencies, max antecedents %d\n",
		in.Schema.Width(), len(in.D), in.MaxAntecedents())

	res := words.DeriveGoal(in.Pres, words.ClosureOptions{Governor: budget.New(nil, budget.Limits{Words: wordCap}), LengthCap: 14})
	fmt.Printf("word problem: %s (%d words explored)\n", res.Verdict, res.WordsExplored)
	if res.Verdict == words.Derivable {
		fmt.Printf("derivation has %d steps; by Reduction Theorem (A), D logically implies D0\n",
			res.Derivation.Len())
	} else {
		fmt.Println("no derivation found — for a diverging machine none exists,")
		fmt.Println("but no algorithm can certify that in general (halting problem)")
	}
	fmt.Println()
}

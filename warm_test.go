package templatedep_test

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"templatedep/internal/budget"
	"templatedep/internal/chase"
	"templatedep/internal/obs"
	"templatedep/internal/reduction"
	"templatedep/internal/words"
)

// A warm start must be invisible in everything but wall clock: the chase of
// a fixed (D, start) pair is one deterministic computation, and a snapshot
// only changes where a run begins observing it. These tests pin that down
// on the paper's own workloads: warm and cold runs must agree on the
// verdict, every Stats field, and the tuple-for-tuple identity of the final
// instance — for serial and parallel workers alike.

func warmCase(t *testing.T, in *reduction.Instance, producer, consumer budget.Limits, workers int) {
	t.Helper()
	prod, err := chase.Implies(in.D, in.D0, chase.Options{
		SemiNaive: true, Workers: workers, CaptureState: true,
		Governor: budget.New(nil, producer)})
	if err != nil {
		t.Fatal(err)
	}
	if prod.State == nil {
		t.Fatal("producer run captured no state")
	}
	warm, err := chase.Implies(in.D, in.D0, chase.Options{
		SemiNaive: true, Workers: workers, WarmState: prod.State,
		Governor: budget.New(nil, consumer)})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := chase.Implies(in.D, in.D0, chase.Options{
		SemiNaive: true, Workers: workers,
		Governor: budget.New(nil, consumer)})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.WarmStarted {
		t.Error("consumer run did not warm-start")
	}
	if warm.Verdict != cold.Verdict {
		t.Errorf("verdict: warm %v, cold %v", warm.Verdict, cold.Verdict)
	}
	if warm.FixpointReached != cold.FixpointReached {
		t.Errorf("fixpoint: warm %v, cold %v", warm.FixpointReached, cold.FixpointReached)
	}
	if warm.Budget != cold.Budget {
		t.Errorf("budget outcome: warm %v, cold %v", warm.Budget, cold.Budget)
	}
	if !reflect.DeepEqual(warm.Stats, cold.Stats) {
		t.Errorf("stats: warm %+v, cold %+v", warm.Stats, cold.Stats)
	}
	if warm.Instance.Len() != cold.Instance.Len() ||
		!warm.Instance.EqualPrefix(cold.Instance, cold.Instance.Len()) {
		t.Errorf("instances differ: warm %d tuples, cold %d tuples",
			warm.Instance.Len(), cold.Instance.Len())
	}
}

func TestWarmVsColdIdentical(t *testing.T) {
	wide := budget.Limits{Rounds: 64, Tuples: 200000}
	for _, tc := range []struct {
		name               string
		p                  *words.Presentation
		producer, consumer budget.Limits
	}{
		// Chain runs complete (implied); the snapshot replays to the goal.
		{"chain1", words.ChainPresentation(1), wide, budget.Limits{Rounds: 128, Tuples: 400000}},
		{"chain2", words.ChainPresentation(2), wide, budget.Limits{Rounds: 128, Tuples: 400000}},
		// The gap instance diverges (round 5 is intractable — see
		// budget_integration_test.go): the producer is stopped by its rounds
		// meter at 3 and the consumer's strictly larger budget class resumes
		// the stopped snapshot into round 4.
		{"gap", words.IdempotentGapPresentation(), budget.Limits{Rounds: 3, Tuples: 100000},
			budget.Limits{Rounds: 4, Tuples: 200000}},
	} {
		in := reduction.MustBuild(tc.p)
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", tc.name, workers), func(t *testing.T) {
				warmCase(t, in, tc.producer, tc.consumer, workers)
			})
		}
	}
}

// A budget-stopped snapshot may only seed runs of a STRICTLY larger budget
// class; smaller-or-equal classes must chase cold (and still get the right
// answer).
func TestStoppedStateBudgetClassRule(t *testing.T) {
	in := reduction.MustBuild(words.IdempotentGapPresentation())
	producer := budget.Limits{Rounds: 3, Tuples: 100000}
	prod, err := chase.Implies(in.D, in.D0, chase.Options{
		SemiNaive: true, CaptureState: true, Governor: budget.New(nil, producer)})
	if err != nil {
		t.Fatal(err)
	}
	if prod.State == nil || !prod.State.Stopped() {
		t.Fatalf("expected a budget-stopped state, got %+v", prod.State)
	}
	for _, tc := range []struct {
		name     string
		limits   budget.Limits
		reusable bool
	}{
		{"equal", budget.Limits{Rounds: 3, Tuples: 100000}, false},
		{"smaller", budget.Limits{Rounds: 2, Tuples: 50000}, false},
		// One strictly larger meter suffices; the replay re-enforces the
		// other meter exactly as a cold run would.
		{"tuples-larger", budget.Limits{Rounds: 3, Tuples: 200000}, true},
		{"larger", budget.Limits{Rounds: 4, Tuples: 200000}, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			warm, err := chase.Implies(in.D, in.D0, chase.Options{
				SemiNaive: true, WarmState: prod.State,
				Governor: budget.New(nil, tc.limits)})
			if err != nil {
				t.Fatal(err)
			}
			if warm.WarmStarted != tc.reusable {
				t.Errorf("WarmStarted = %v, want %v", warm.WarmStarted, tc.reusable)
			}
			cold, err := chase.Implies(in.D, in.D0, chase.Options{
				SemiNaive: true, Governor: budget.New(nil, tc.limits)})
			if err != nil {
				t.Fatal(err)
			}
			if warm.Verdict != cold.Verdict || !reflect.DeepEqual(warm.Stats, cold.Stats) {
				t.Errorf("warm fallback diverged from cold: %v/%+v vs %v/%+v",
					warm.Verdict, warm.Stats, cold.Verdict, cold.Stats)
			}
		})
	}
}

// The replay invariant extends to the incremental path: a warm trace folds
// its skipped prefix into one chase_warmstart event, and replaying the
// stream must still reproduce the run's Stats exactly.
func TestWarmTraceReplayMatchesStats(t *testing.T) {
	for _, tc := range []struct {
		name               string
		p                  *words.Presentation
		producer, consumer budget.Limits
	}{
		{"chain1", words.ChainPresentation(1),
			budget.Limits{Rounds: 32, Tuples: 200000}, budget.Limits{Rounds: 32, Tuples: 200000}},
		{"chain2", words.ChainPresentation(2),
			budget.Limits{Rounds: 32, Tuples: 200000}, budget.Limits{Rounds: 32, Tuples: 200000}},
		// Resume path: stopped producer, larger consumer class.
		{"gap-resume", words.IdempotentGapPresentation(),
			budget.Limits{Rounds: 3, Tuples: 100000}, budget.Limits{Rounds: 4, Tuples: 200000}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			in := reduction.MustBuild(tc.p)
			prod, err := chase.Implies(in.D, in.D0, chase.Options{
				SemiNaive: true, CaptureState: true, Governor: budget.New(nil, tc.producer)})
			if err != nil {
				t.Fatal(err)
			}
			if prod.State == nil {
				t.Fatal("no state captured")
			}
			var buf bytes.Buffer
			res, err := chase.Implies(in.D, in.D0, chase.Options{
				SemiNaive: true, WarmState: prod.State,
				Governor: budget.New(nil, tc.consumer),
				Sink:     obs.NewJSONLSink(&buf)})
			if err != nil {
				t.Fatal(err)
			}
			if !res.WarmStarted {
				t.Fatal("run did not warm-start")
			}
			tot, err := obs.Replay(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if tot.WarmStarts != 1 {
				t.Errorf("warm starts: replay %d, want 1", tot.WarmStarts)
			}
			st := res.Stats
			if tot.Rounds != st.Rounds {
				t.Errorf("rounds: replay %d, stats %d", tot.Rounds, st.Rounds)
			}
			if tot.TriggersMatched != st.TriggersMatched {
				t.Errorf("matched: replay %d, stats %d", tot.TriggersMatched, st.TriggersMatched)
			}
			if tot.TriggersFired != st.TriggersFired {
				t.Errorf("fired: replay %d, stats %d", tot.TriggersFired, st.TriggersFired)
			}
			if tot.TuplesAdded != st.TuplesAdded {
				t.Errorf("added: replay %d, stats %d", tot.TuplesAdded, st.TuplesAdded)
			}
			if tot.NullsCreated != st.NullsCreated {
				t.Errorf("nulls: replay %d, stats %d", tot.NullsCreated, st.NullsCreated)
			}
			if tot.Homomorphisms != st.HomomorphismsSeen {
				t.Errorf("homs: replay %d, stats %d", tot.Homomorphisms, st.HomomorphismsSeen)
			}
			if got := tot.Verdicts["chase"]; got != res.Verdict.String() {
				t.Errorf("verdict: replay %q, run %q", got, res.Verdict)
			}
		})
	}
}

// Command tdcheck audits a concrete database against a set of template
// dependencies: every violated dependency is reported with a violating
// match, and -repair chases the database to a fixpoint that satisfies all
// (full) dependencies, printing the tuples that must be added.
//
// Database files hold one fact per line: R(StLaurent, EveningDress, 10).
// Dependency files hold one TD per line in the td syntax.
//
// With -verify CERT, tdcheck is instead the standalone certificate
// checker: it decodes the JSON certificate a definitive verdict carries
// (tdinfer -cert, sgword, or POST /infer?cert=1), re-checks the proof
// independently of the engines that produced it, and prints a readable
// rendering. Exit 0 means the certificate is valid; any tampering —
// corrupted steps, forged derivations, witness tables that fail a
// dependency, truncated JSON — exits 1 with a precise error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"templatedep/internal/budget"
	"templatedep/internal/cert"
	"templatedep/internal/chase"
	"templatedep/internal/relation"
	"templatedep/internal/tableau"
	"templatedep/internal/td"
)

func main() {
	var (
		schemaFlag = flag.String("schema", "", "comma-separated attribute names (required)")
		dbFile     = flag.String("db", "", "database file (required)")
		depsFile   = flag.String("deps", "", "dependency file (required)")
		repair     = flag.Bool("repair", false, "chase the database and print the repair tuples")
		rounds     = flag.Int("rounds", 64, "chase round budget for -repair")
		verify     = flag.String("verify", "", "verify the JSON certificate in FILE (standalone mode; ignores -schema/-db/-deps)")
	)
	flag.Parse()
	if *verify != "" {
		verifyCert(*verify)
		return
	}
	if *schemaFlag == "" || *dbFile == "" || *depsFile == "" {
		fmt.Fprintln(os.Stderr, "tdcheck: -schema, -db and -deps are required (or -verify CERT)")
		flag.Usage()
		os.Exit(2)
	}
	schema, err := relation.NewSchema(strings.Split(*schemaFlag, ","))
	if err != nil {
		fatal(err)
	}
	dbText, err := os.ReadFile(*dbFile)
	if err != nil {
		fatal(err)
	}
	inst, namer, err := relation.ParseInstance(schema, string(dbText))
	if err != nil {
		fatal(err)
	}
	depText, err := os.ReadFile(*depsFile)
	if err != nil {
		fatal(err)
	}
	deps, err := td.ParseSet(schema, string(depText))
	if err != nil {
		fatal(err)
	}

	fmt.Printf("database: %d tuples over %s\n", inst.Len(), schema)
	violations := 0
	for _, d := range deps {
		ok, witness := d.Satisfies(inst)
		if ok {
			fmt.Printf("  OK        %s\n", d)
			continue
		}
		violations++
		fmt.Printf("  VIOLATED  %s\n", d)
		fmt.Printf("            match with no conclusion tuple: %s\n", describeMatch(d, witness, namer))
	}
	if violations == 0 {
		fmt.Println("all dependencies hold")
		return
	}
	fmt.Printf("%d of %d dependencies violated\n", violations, len(deps))

	if *repair {
		e, err := chase.NewEngine(schema, deps, chase.Options{Governor: budget.New(nil, budget.Limits{Rounds: *rounds, Tuples: 100000}), SemiNaive: true})
		if err != nil {
			fatal(err)
		}
		res := e.Chase(inst, nil)
		if !res.FixpointReached {
			fmt.Printf("repair chase did not reach a fixpoint within %d rounds (embedded dependencies may chase forever)\n", *rounds)
			os.Exit(1)
		}
		fmt.Printf("repair: %d tuples to add (chase fixpoint has %d):\n", res.Instance.Len()-inst.Len(), res.Instance.Len())
		for _, t := range res.Instance.Tuples() {
			if !inst.Contains(t) {
				fmt.Printf("  + %s\n", namer.FormatTuple(t))
			}
		}
	}
	os.Exit(1)
}

// describeMatch renders the antecedent bindings of a violation witness.
func describeMatch(d *td.TD, as tableau.Assignment, namer *relation.Namer) string {
	if as == nil {
		return "(none)"
	}
	var parts []string
	for i := 0; i < d.NumAntecedents(); i++ {
		row := d.Antecedent(i)
		tup := make(relation.Tuple, len(row))
		for a, v := range row {
			tup[a] = as[a][v]
		}
		parts = append(parts, namer.FormatTuple(tup))
	}
	return strings.Join(parts, " & ")
}

// verifyCert runs the standalone certificate checker: strict decode, full
// independent re-check, readable rendering. The process exit code IS the
// verification verdict.
func verifyCert(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	c, err := cert.Decode(data)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	if err := cert.Check(c); err != nil {
		fmt.Print(cert.Describe(c))
		fatal(fmt.Errorf("%s: REJECTED: %w", path, err))
	}
	fmt.Print(cert.Describe(c))
	fmt.Printf("certificate OK: the %s proof checks out; verdict %q is certified\n", c.Kind, c.Verdict)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tdcheck:", err)
	os.Exit(1)
}

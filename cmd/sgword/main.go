// Command sgword is a workbench for the word problem of the Main Lemma:
// semigroup presentations with zero and the goal equation A0 = 0.
//
// Subcommands:
//
//	sgword derive   -preset twostep            # equational-closure search
//	sgword complete -spec pres.sg              # Knuth–Bendix completion
//	sgword model    -preset power              # finite cancellation model search
//	sgword analyze  -preset power              # full dual pipeline via the reduction
//
// Each certificate is printed: a derivation chain for "derive", a confluent
// rule system for "complete", a multiplication table plus symbol assignment
// for "model", and the corresponding TD-level artifacts for "analyze".
//
// analyze additionally takes -progress (live one-line status on stderr —
// useful on slow instances like -preset gap), -trace FILE (the structured
// JSONL event stream of the whole run), and -deepen DURATION, which
// switches to iterative deepening: budgets double each round until a verdict
// or the wall-clock deadline. See docs/OBSERVABILITY.md for the event and
// trace schema.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"templatedep/internal/budget"
	"templatedep/internal/core"
	"templatedep/internal/obs"
	"templatedep/internal/psearch"
	"templatedep/internal/rewrite"
	"templatedep/internal/search"
	"templatedep/internal/words"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	sub := os.Args[1]
	fs := flag.NewFlagSet(sub, flag.ExitOnError)
	specFile := fs.String("spec", "", "presentation spec file")
	preset := fs.String("preset", "", "preset presentation: power|twostep|gap|chain:N|nilpotent:M|tower:K")
	maxWords := fs.Int("max-words", 100000, "closure search: word budget")
	maxLen := fs.Int("max-length", 0, "closure search: word length cap (0 = unbounded)")
	maxOrder := fs.Int("max-order", 6, "model search: largest semigroup order")
	maxNodes := fs.Int("max-nodes", 5_000_000, "model search: node budget")
	maxRules := fs.Int("max-rules", 500, "completion: rule budget")
	bidi := fs.Bool("bidirectional", false, "derive: meet-in-the-middle search")
	quotient := fs.Int("quotient", 0, "model: try nilpotent quotients up to this class before the table search (0 = off)")
	workers := fs.Int("workers", 1, "model/analyze: worker goroutines for the model search (results are identical for every value)")
	pruneFlag := fs.String("prune", "symmetry", "model/analyze: symmetry breaking in the model search: symmetry|none")
	cert := fs.Bool("cert", false, "derive: emit a machine-checkable certificate instead of the pretty chain")
	checkCert := fs.String("check-cert", "", "derive: validate a certificate file against the presentation and exit")
	progress := fs.Bool("progress", false, "analyze: live progress line on stderr")
	deepen := fs.Duration("deepen", 0, "analyze: iterative deepening with this wall-clock deadline (0 = single budgeted run)")
	traceFile := fs.String("trace", "", "analyze: write the structured event stream to FILE as JSONL (see docs/OBSERVABILITY.md)")
	if err := fs.Parse(os.Args[2:]); err != nil {
		fatal(err)
	}

	// Ctrl-C cancels the root context; every semi-procedure notices at its
	// next governor checkpoint and reports unknown with partial counts.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	p, err := load(*specFile, *preset)
	if err != nil {
		fatal(err)
	}
	prune, err := psearch.ParsePrune(*pruneFlag)
	if err != nil {
		fatal(err)
	}
	if !(sub == "derive" && *cert) {
		fmt.Printf("# presentation over %s, %d equations; goal %s\n\n",
			p.Alphabet, len(p.Equations), p.Goal().Format(p.Alphabet))
	}

	switch sub {
	case "derive":
		if *checkCert != "" {
			data, err := os.ReadFile(*checkCert)
			if err != nil {
				fatal(err)
			}
			d, err := words.ParseDerivation(p, string(data))
			if err != nil {
				fatal(err)
			}
			fmt.Printf("certificate valid: %s = %s in %d steps\n",
				d.From.Format(p.Alphabet), d.To.Format(p.Alphabet), d.Len())
			return
		}
		opts := words.ClosureOptions{
			Governor:  budget.New(ctx, budget.Limits{Words: *maxWords}),
			LengthCap: *maxLen,
		}
		var res words.Result
		if *bidi {
			res = words.DeriveGoalBidirectional(p, opts)
		} else {
			res = words.DeriveGoal(p, opts)
		}
		if *cert {
			if res.Derivation == nil {
				fatal(fmt.Errorf("no derivation found (verdict %s); nothing to certify", res.Verdict))
			}
			fmt.Print(res.Derivation.MarshalText(p))
			return
		}
		fmt.Printf("verdict: %s (%d words explored)\n", res.Verdict, res.WordsExplored)
		if res.Budget.Stopped() {
			fmt.Printf("search stopped by budget: %s (partial results)\n", res.Budget)
		}
		if res.Derivation != nil {
			fmt.Println("derivation:")
			fmt.Print(res.Derivation.Format(p))
		}
	case "complete":
		s := rewrite.FromPresentation(p)
		res, err := s.Complete(rewrite.CompletionOptions{
			Governor: budget.New(ctx, budget.Limits{Rules: *maxRules, Rounds: rewrite.DefaultLimits.Rounds}),
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("confluent: %v after %d iterations, %d rules\n", res.Confluent, res.Iterations, len(s.Rules))
		if res.Budget.Stopped() {
			fmt.Printf("completion stopped by budget: %s\n", res.Budget)
		}
		if res.Confluent {
			ok, err := s.DecideGoal()
			if err != nil {
				fatal(err)
			}
			fmt.Printf("goal decided: %v\nrules:\n%s", ok, s.Format())
		}
	case "model":
		res, err := search.FindCounterModel(p, search.Options{
			Orders:          budget.Range{Lo: search.DefaultOrders.Lo, Hi: *maxOrder},
			Governor:        budget.New(ctx, budget.Limits{Nodes: *maxNodes}),
			QuotientClasses: *quotient,
			Workers:         *workers,
			Prune:           prune,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("outcome: %s (%d nodes)\n", res.Status(), res.NodesVisited)
		if res.Interpretation != nil {
			fmt.Printf("witness semigroup:\n%s", res.Interpretation.Table.String())
			fmt.Println("assignment:")
			for _, s := range p.Alphabet.Symbols() {
				fmt.Printf("  %s -> %d\n", p.Alphabet.Name(s), int(res.Interpretation.Assign[s]))
			}
		}
	case "analyze":
		g := budget.New(ctx, budget.Limits{})
		b := core.DefaultBudget()
		b.Governor = g
		b.Closure = words.ClosureOptions{
			Governor:  g.Child(budget.Limits{Words: *maxWords}),
			LengthCap: *maxLen,
		}
		b.ModelSearch = search.Options{
			Orders:          budget.Range{Lo: search.DefaultOrders.Lo, Hi: *maxOrder},
			Governor:        g.Child(budget.Limits{Nodes: *maxNodes}),
			QuotientClasses: *quotient,
			Workers:         *workers,
			Prune:           prune,
		}
		b.FiniteDB.Workers = *workers
		b.FiniteDB.Prune = prune
		var sinks []obs.Sink
		if *traceFile != "" {
			f, err := os.Create(*traceFile)
			if err != nil {
				fatal(err)
			}
			w := bufio.NewWriter(f)
			jl := obs.NewJSONLSink(w)
			defer func() {
				if err := jl.Err(); err != nil {
					fatal(err)
				}
				if err := w.Flush(); err != nil {
					fatal(err)
				}
				if err := f.Close(); err != nil {
					fatal(err)
				}
			}()
			sinks = append(sinks, jl)
		}
		if *progress {
			prog := obs.NewProgressSink(os.Stderr)
			defer prog.Close()
			sinks = append(sinks, prog)
		}
		b.Sink = obs.Multi(sinks...)
		var res *core.PresentationResult
		var err error
		if *deepen > 0 {
			// Deepening starts from the front-end's own small budgets and
			// doubles them each round, so slow instances (e.g. the gap
			// preset) report honestly within the deadline instead of
			// grinding one huge budget. The governor carries both the
			// deadline and the SIGINT context.
			dctx, dcancel := context.WithTimeout(ctx, *deepen)
			defer dcancel()
			opt := core.DeepeningOptions{Governor: budget.New(dctx, budget.Limits{Rounds: 16})}
			opt.Initial.Sink = b.Sink
			opt.Initial.ModelSearch.QuotientClasses = *quotient
			var rounds int
			res, rounds, err = core.AnalyzePresentationDeepening(p, opt)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("deepening: %d rounds within %s\n", rounds, *deepen)
		} else {
			res, err = core.AnalyzePresentation(p, b)
			if err != nil {
				fatal(err)
			}
		}
		fmt.Printf("verdict: %s\n", res.Verdict)
		fmt.Printf("reduction: schema width %d, |D| = %d, max antecedents %d\n",
			res.Instance.Schema.Width(), len(res.Instance.D), res.Instance.MaxAntecedents())
		switch res.Verdict {
		case core.Implied:
			fmt.Printf("derivation (%d steps) certifies D |= D0:\n%s", res.Derivation.Len(), res.Derivation.Format(res.Instance.Pres))
			if res.ChaseProof != nil {
				fmt.Printf("chase confirmation: %d rounds, %d tuples\n",
					res.ChaseProof.Stats.Rounds, res.ChaseProof.Instance.Len())
			}
		case core.FiniteCounterexample:
			fmt.Printf("finite semigroup witness (order %d) and database (%d tuples) certify D0's failure\n",
				res.Witness.Table.Size(), res.CounterModel.Instance.Len())
			fmt.Printf("|P| = %d, |Q| = %d\n", len(res.CounterModel.PElems), len(res.CounterModel.QTriples))
		default:
			if res.GoalRefuted {
				fmt.Println("word problem refuted (A0 = 0 does not follow equationally), but no")
				fmt.Println("finite cancellation witness found: the instance may lie in the gap")
				fmt.Println("between the Main Theorem's two sets")
			} else {
				fmt.Println("inconclusive within budget (the undecidability gap in action)")
			}
		}
	default:
		usage()
	}
}

func load(specFile, preset string) (*words.Presentation, error) {
	switch {
	case specFile != "" && preset != "":
		return nil, fmt.Errorf("use either -spec or -preset, not both")
	case specFile != "":
		data, err := os.ReadFile(specFile)
		if err != nil {
			return nil, err
		}
		return words.ParseSpec(string(data))
	case preset != "":
		return words.Preset(preset)
	default:
		return nil, fmt.Errorf("one of -spec or -preset is required")
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: sgword {derive|complete|model|analyze} [-spec FILE | -preset NAME] [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sgword:", err)
	os.Exit(1)
}

// Command tddiagram renders template dependencies as the dependency
// diagrams of Fagin et al. that the paper draws in Figs. 1–3.
//
// Examples:
//
//	tddiagram -fig1                       # the paper's Figure 1
//	tddiagram -fig3 -preset power         # D1..D4 for each equation + D0
//	tddiagram -schema A,B -td "R(a,b) -> R(a,b')" -dot
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"templatedep/internal/diagram"
	"templatedep/internal/eid"
	"templatedep/internal/reduction"
	"templatedep/internal/relation"
	"templatedep/internal/td"
	"templatedep/internal/words"
)

func main() {
	var (
		fig1       = flag.Bool("fig1", false, "render the paper's Figure 1")
		fig3       = flag.Bool("fig3", false, "render the reduction's dependencies (Figure 3) for -preset/-spec")
		preset     = flag.String("preset", "power", "preset presentation for -fig3")
		specFile   = flag.String("spec", "", "presentation spec file for -fig3")
		schemaFlag = flag.String("schema", "", "attribute names for -td / -eid")
		tdFlag     = flag.String("td", "", "a TD to render")
		eidFlag    = flag.String("eid", "", "an EID (conjunctive conclusion) to render")
		dot        = flag.Bool("dot", false, "emit Graphviz instead of ASCII")
	)
	flag.Parse()

	emit := func(name string, g *diagram.Diagram) {
		if *dot {
			fmt.Print(g.DOT(name))
		} else {
			fmt.Printf("== %s ==\n%s\n", name, g.ASCII())
		}
	}

	switch {
	case *fig1:
		g, d := diagram.Fig1()
		fmt.Printf("# %s\n", d.Format())
		emit("Figure 1", g)
	case *fig3:
		var p *words.Presentation
		var err error
		if *specFile != "" {
			data, rerr := os.ReadFile(*specFile)
			if rerr != nil {
				fatal(rerr)
			}
			p, err = words.ParseSpec(string(data))
		} else {
			p, err = words.Preset(*preset)
		}
		if err != nil {
			fatal(err)
		}
		in, err := reduction.Build(p)
		if err != nil {
			fatal(err)
		}
		for _, d := range append(in.D, in.D0) {
			fmt.Printf("# %s\n", d.Format())
			emit(d.Name(), diagram.FromTD(d))
		}
	case *tdFlag != "":
		if *schemaFlag == "" {
			fatal(fmt.Errorf("-td requires -schema"))
		}
		schema, err := relation.NewSchema(strings.Split(*schemaFlag, ","))
		if err != nil {
			fatal(err)
		}
		d, err := td.Parse(schema, *tdFlag, "td")
		if err != nil {
			fatal(err)
		}
		fmt.Printf("# %s (full=%v trivial=%v)\n", d.Format(), d.IsFull(), d.IsTrivial())
		emit("td", diagram.FromTD(d))
	case *eidFlag != "":
		if *schemaFlag == "" {
			fatal(fmt.Errorf("-eid requires -schema"))
		}
		schema, err := relation.NewSchema(strings.Split(*schemaFlag, ","))
		if err != nil {
			fatal(err)
		}
		e, err := eid.Parse(schema, *eidFlag, "eid")
		if err != nil {
			fatal(err)
		}
		fmt.Printf("# %s (%d conclusion atoms)\n", e.Format(), e.NumConclusions())
		emit("eid", diagram.FromEID(e))
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tddiagram:", err)
	os.Exit(1)
}

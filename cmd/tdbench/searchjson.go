// Machine-readable search benchmarks: `tdbench -searchjson FILE` measures
// the direction-(B) counter-model search — the semigroup table search of
// internal/search and the finite-database enumeration of
// internal/finitemodel — under a 2x2 ablation grid and writes one JSON
// document (BENCH_search.json in-repo). The grid crosses execution mode
// (serial vs parallel with 4 workers) with symmetry breaking (symmetry vs
// none), so every snapshot carries its own before/after comparison in both
// dimensions:
//
//   - speedup is baseline (serial, prune=none) over production
//     (parallel-4, prune=symmetry) — the same stock-vs-production framing
//     as the JoinScan/JoinIndex arms of -benchjson. On a single-core
//     machine the parallel dimension alone is roughly neutral; the wins
//     come from pruning, and the report records num_cpu so the reader can
//     judge the headline honestly.
//   - pruned_nodes / unpruned_nodes compare the serial node ledgers, which
//     are exact and deterministic (parallel committed ledgers are
//     identical by construction, so the serial ones stand for both).
//
// `tdbench -checksearch FILE` validates a previously written report: it
// must parse, every workload must carry both ablation arms in both
// dimensions, and verdicts must agree across all four arms.
package main

import (
	"fmt"
	"runtime"

	"templatedep/internal/budget"
	"templatedep/internal/finitemodel"
	"templatedep/internal/psearch"
	"templatedep/internal/reduction"
	"templatedep/internal/search"
	"templatedep/internal/words"
)

// benchWorkers is the worker count of the parallel arms. Fixed rather than
// NumCPU-derived so reports from different machines measure the same
// configuration.
const benchWorkers = 4

type searchArm struct {
	// Mode is "serial" (Workers=1) or "parallel-4" (Workers=4).
	Mode string `json:"mode"`
	// Prune is the symmetry-breaking ablation: "symmetry" or "none".
	Prune   string  `json:"prune"`
	NsPerOp float64 `json:"ns_per_op"`
	// Nodes is the committed node ledger — identical for every Workers
	// value by the determinism contract of internal/psearch.
	Nodes int `json:"nodes"`
	// SpeculativeNodes counts extra work parallel arms performed beyond
	// the committed ledger; scheduling-dependent and typically 0 on one
	// core.
	SpeculativeNodes int    `json:"speculative_nodes,omitempty"`
	Verdict          string `json:"verdict"`
}

type searchWorkload struct {
	Name string      `json:"name"`
	Arms []searchArm `json:"arms"`
	// Speedup is ns_per_op(serial, none) / ns_per_op(parallel-4,
	// symmetry): stock baseline over production configuration.
	Speedup float64 `json:"speedup"`
	// PrunedNodes/UnprunedNodes are the serial node ledgers of the two
	// prune arms.
	PrunedNodes   int `json:"pruned_nodes"`
	UnprunedNodes int `json:"unpruned_nodes"`
	// VerdictsIdentical is true when all four arms reached the same
	// verdict — the soundness requirement for every ablation.
	VerdictsIdentical bool `json:"verdicts_identical"`
}

type searchSummary struct {
	// HeadlineSpeedup is the best baseline-over-production ratio across
	// workloads, and HeadlineWorkload names where it occurred.
	HeadlineSpeedup  float64 `json:"headline_speedup"`
	HeadlineWorkload string  `json:"headline_workload"`
	// Gap*Nodes restate the pruning effect on the finitedb/gap workload,
	// the paper's hard instance: symmetry breaking must shrink its tree
	// without changing the verdict.
	GapPrunedNodes       int  `json:"gap_pruned_nodes"`
	GapUnprunedNodes     int  `json:"gap_unpruned_nodes"`
	AllVerdictsIdentical bool `json:"all_verdicts_identical"`
}

type searchReport struct {
	reportHost
	NumCPU    int              `json:"num_cpu"`
	Workers   int              `json:"workers"`
	Workloads []searchWorkload `json:"workloads"`
	Summary   searchSummary    `json:"summary"`
}

// searchCase is one workload: run executes it once under the given arm and
// returns the node ledgers and the verdict. Runs are deterministic, so one
// un-timed run per arm records the exact counts.
type searchCase struct {
	name string
	run  func(workers int, prune psearch.Prune) (nodes, spec int, verdict string)
}

func searchCases() []searchCase {
	model := func(name string, p *words.Presentation, hi int) searchCase {
		return searchCase{
			name: "modelsearch/" + name,
			run: func(workers int, prune psearch.Prune) (int, int, string) {
				res, err := search.FindCounterModel(p, search.Options{
					Orders:   budget.Range{Lo: 2, Hi: hi},
					Workers:  workers,
					Prune:    prune,
					Governor: budget.New(nil, budget.Limits{Nodes: 50_000_000}),
				})
				check(err)
				return res.NodesVisited, res.SpeculativeNodes, res.Status()
			},
		}
	}
	fdb := func(name string, p *words.Presentation) searchCase {
		in := reduction.MustBuild(p)
		return searchCase{
			name: "finitedb/" + name,
			run: func(workers int, prune psearch.Prune) (int, int, string) {
				res, err := finitemodel.FindCounterexample(in.D, in.D0, finitemodel.Options{
					Sizes:    budget.Range{Lo: 1, Hi: 2},
					Workers:  workers,
					Prune:    prune,
					Governor: budget.New(nil, budget.Limits{Nodes: 50_000_000}),
				})
				check(err)
				return res.NodesVisited, res.SpeculativeNodes, res.Status()
			},
		}
	}
	return []searchCase{
		model("power", words.PowerPresentation(), 4),
		model("gap", words.IdempotentGapPresentation(), 5),
		model("nilpotent4", words.NilpotentSafePresentation(4), 4),
		model("tower2", words.PowerTowerPresentation(2), 5),
		fdb("gap", words.IdempotentGapPresentation()),
		fdb("power", words.PowerPresentation()),
	}
}

// searchArms is the 2x2 ablation grid. The order is load-bearing for
// -checksearch only in that all four must be present; speedup and node
// deltas are found by (mode, prune) lookup, not position.
var searchArms = []struct {
	mode    string
	workers int
	prune   psearch.Prune
}{
	{"serial", 1, psearch.PruneSymmetry},
	{"serial", 1, psearch.PruneNone},
	{"parallel-4", benchWorkers, psearch.PruneSymmetry},
	{"parallel-4", benchWorkers, psearch.PruneNone},
}

func writeSearchJSON(path string, quick bool) {
	fail := reportFail("search")
	reportProbe(path, fail)

	rep := searchReport{
		reportHost: newReportHost(),
		NumCPU:     runtime.NumCPU(),
		Workers:    benchWorkers,
	}

	measure := func(run func()) float64 { return measureNs(quick, run) }

	for _, c := range searchCases() {
		w := searchWorkload{Name: c.name, VerdictsIdentical: true}
		var baselineNs, productionNs float64
		for _, arm := range searchArms {
			nodes, spec, verdict := c.run(arm.workers, arm.prune)
			ns := measure(func() { c.run(arm.workers, arm.prune) })
			a := searchArm{
				Mode: arm.mode, Prune: arm.prune.String(),
				NsPerOp: ns, Nodes: nodes, SpeculativeNodes: spec, Verdict: verdict,
			}
			w.Arms = append(w.Arms, a)
			if verdict != w.Arms[0].Verdict {
				w.VerdictsIdentical = false
			}
			switch {
			case arm.workers == 1 && arm.prune == psearch.PruneNone:
				baselineNs, w.UnprunedNodes = ns, nodes
			case arm.workers == benchWorkers && arm.prune == psearch.PruneSymmetry:
				productionNs = ns
			case arm.workers == 1 && arm.prune == psearch.PruneSymmetry:
				w.PrunedNodes = nodes
			}
			fmt.Printf("%-22s %-10s %-9s %12.0f ns/op %9d nodes  %s\n",
				c.name, arm.mode, arm.prune, ns, nodes, verdict)
		}
		if productionNs > 0 {
			w.Speedup = baselineNs / productionNs
		}
		rep.Workloads = append(rep.Workloads, w)
		if w.Speedup > rep.Summary.HeadlineSpeedup {
			rep.Summary.HeadlineSpeedup = w.Speedup
			rep.Summary.HeadlineWorkload = w.Name
		}
	}
	rep.Summary.AllVerdictsIdentical = true
	for _, w := range rep.Workloads {
		if !w.VerdictsIdentical {
			rep.Summary.AllVerdictsIdentical = false
		}
		if w.Name == "finitedb/gap" {
			rep.Summary.GapPrunedNodes = w.PrunedNodes
			rep.Summary.GapUnprunedNodes = w.UnprunedNodes
		}
	}

	reportWrite(path, rep, fail)
	fmt.Printf("\nwrote %d workloads to %s (headline %.2fx on %s, gap nodes %d -> %d)\n",
		len(rep.Workloads), path, rep.Summary.HeadlineSpeedup, rep.Summary.HeadlineWorkload,
		rep.Summary.GapUnprunedNodes, rep.Summary.GapPrunedNodes)
}

// checkSearchJSON validates a BENCH_search.json: parseable, every workload
// carries all four ablation arms, and no ablation flipped a verdict. Used
// by the CI smoke so a refactor cannot silently drop an arm or desync the
// serial and parallel search paths.
func checkSearchJSON(path string) {
	fail := reportFail(path)
	var rep searchReport
	reportRead(path, &rep, false, fail)
	if len(rep.Workloads) == 0 {
		fail("no workloads")
	}
	for _, w := range rep.Workloads {
		seen := map[string]bool{}
		for _, a := range w.Arms {
			seen[a.Mode+"/"+a.Prune] = true
		}
		for _, arm := range searchArms {
			key := arm.mode + "/" + arm.prune.String()
			if !seen[key] {
				fail("workload %s missing ablation arm %s", w.Name, key)
			}
		}
		if !w.VerdictsIdentical {
			fail("workload %s: verdict changed across ablation arms", w.Name)
		}
	}
	if !rep.Summary.AllVerdictsIdentical {
		fail("summary reports non-identical verdicts")
	}
	fmt.Printf("%s: %d workloads, all %d arms present, verdicts identical; headline %.2fx (%s), gap nodes %d -> %d\n",
		path, len(rep.Workloads), len(searchArms), rep.Summary.HeadlineSpeedup, rep.Summary.HeadlineWorkload,
		rep.Summary.GapUnprunedNodes, rep.Summary.GapPrunedNodes)
}

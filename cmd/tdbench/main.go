// Command tdbench regenerates every experiment of EXPERIMENTS.md: the three
// figures of the paper (F1–F3) and the checkable claims of its text
// (E1–E9). Output is a self-contained report; `go test -bench=.` measures
// the same experiments with timing.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"templatedep/internal/budget"
	"templatedep/internal/chase"
	"templatedep/internal/core"
	"templatedep/internal/diagram"
	"templatedep/internal/eid"
	"templatedep/internal/finitemodel"
	"templatedep/internal/reduction"
	"templatedep/internal/relation"
	"templatedep/internal/search"
	"templatedep/internal/semigroup"
	"templatedep/internal/td"
	"templatedep/internal/tm"
	"templatedep/internal/words"
)

func main() {
	quick := flag.Bool("quick", false, "skip the slower experiments (E5 TM pipeline sweep)")
	benchjson := flag.String("benchjson", "", "measure the F1-F3 and chase workloads and write JSON results to this file instead of running the report")
	metrics := flag.Bool("metrics", false, "with -benchjson: fold an observability counter snapshot of each chase workload into the JSON (see docs/OBSERVABILITY.md)")
	searchjson := flag.String("searchjson", "", "measure the counter-model search workloads under the serial/parallel and symmetry/none ablations and write JSON results to this file")
	searchquick := flag.Bool("searchquick", false, "with -searchjson: one timed run per arm instead of a full benchmark loop (CI smoke)")
	portfoliojson := flag.String("portfoliojson", "", "compare the static race against the adaptive portfolio on the preset grid and write JSON results to this file")
	portfolioquick := flag.Bool("portfolioquick", false, "with -portfoliojson: one timed run per side instead of a full benchmark loop (CI smoke)")
	checkportfolio := flag.String("checkportfolio", "", "validate a -portfoliojson report (parses, verdicts consistent, acceptance thresholds on full reports) and exit")
	checksearch := flag.String("checksearch", "", "validate a -searchjson report (parses, all ablation arms present, verdicts identical) and exit")
	checkbench := flag.String("checkbench", "", "validate a -benchjson report (parses, all workloads present, join-arm verdicts identical) and exit")
	loadjson := flag.String("loadjson", "", "hammer a running tdserve with a duplicate-heavy workload and write JSON results to this file")
	loadserver := flag.String("loadserver", "http://127.0.0.1:8080", "with -loadjson: base URL of the tdserve instance")
	loadn := flag.Int("loadn", 200, "with -loadjson: total requests to send")
	loadc := flag.Int("loadc", 8, "with -loadjson: concurrent client workers")
	shardjson := flag.String("shardjson", "", "self-host a 3-replica sharded tdserve ring, burst it, kill+restart one replica, and write JSON results to this file")
	shardquick := flag.Bool("shardquick", false, "with -shardjson: fewer burst rounds (CI smoke)")
	checkserve := flag.String("checkserve", "", "validate a -shardjson report (parses, shards split, peer fills adopted, restart served from the store) and exit")
	fuzzjson := flag.String("fuzzjson", "", "generate a seeded scenario corpus, run it through every engine differentially, and write JSON results to this file")
	fuzzquick := flag.Bool("fuzzquick", false, "with -fuzzjson: ~100-instance corpus (CI smoke) instead of the full default")
	fuzzn := flag.Int("fuzzn", 0, "with -fuzzjson: total corpus instances (0 means the default: 240 full, 100 quick)")
	fuzzseed := flag.Int64("fuzzseed", 1, "with -fuzzjson: corpus and mutation seed")
	checkfuzz := flag.String("checkfuzz", "", "validate a -fuzzjson report (parses, all families present, zero disagreements, definitive verdicts certified) and exit")
	flag.Parse()

	if *metrics && *benchjson == "" {
		fmt.Fprintln(os.Stderr, "tdbench: -metrics requires -benchjson")
		os.Exit(2)
	}
	if *searchquick && *searchjson == "" {
		fmt.Fprintln(os.Stderr, "tdbench: -searchquick requires -searchjson")
		os.Exit(2)
	}
	if *portfolioquick && *portfoliojson == "" {
		fmt.Fprintln(os.Stderr, "tdbench: -portfolioquick requires -portfoliojson")
		os.Exit(2)
	}
	if *checkportfolio != "" {
		checkPortfolioJSON(*checkportfolio)
		return
	}
	if *checksearch != "" {
		checkSearchJSON(*checksearch)
		return
	}
	if *checkbench != "" {
		checkBenchJSON(*checkbench)
		return
	}
	if *checkserve != "" {
		checkServeJSON(*checkserve)
		return
	}
	if *checkfuzz != "" {
		checkFuzzJSON(*checkfuzz)
		return
	}
	if (*fuzzquick || *fuzzn != 0) && *fuzzjson == "" {
		fmt.Fprintln(os.Stderr, "tdbench: -fuzzquick and -fuzzn require -fuzzjson")
		os.Exit(2)
	}
	if *fuzzjson != "" {
		writeFuzzJSON(*fuzzjson, *fuzzquick, *fuzzn, *fuzzseed)
		return
	}
	if *shardquick && *shardjson == "" {
		fmt.Fprintln(os.Stderr, "tdbench: -shardquick requires -shardjson")
		os.Exit(2)
	}
	if *shardjson != "" {
		writeShardJSON(*shardjson, *shardquick)
		return
	}
	if *loadjson != "" {
		writeLoadJSON(*loadjson, *loadserver, *loadn, *loadc)
		return
	}
	if *benchjson != "" {
		writeBenchJSON(*benchjson, *metrics)
		return
	}
	if *searchjson != "" {
		writeSearchJSON(*searchjson, *searchquick)
		return
	}
	if *portfoliojson != "" {
		writePortfolioJSON(*portfoliojson, *portfolioquick)
		return
	}

	f1()
	f2()
	f3()
	e1()
	e2()
	e3()
	e4()
	if !*quick {
		e5()
	}
	e6()
	e7()
	e8()
	e9()
	e10()
	e11()
	e12()
}

func header(id, claim string) {
	fmt.Printf("\n## %s — %s\n\n", id, claim)
}

func f1() {
	header("F1 (Fig. 1)", "the garment dependency and its diagram")
	g, d := diagram.Fig1()
	fmt.Printf("paper-form TD: %s\n", d.Format())
	fmt.Print(g.ASCII())
	back, err := g.TD("roundtrip")
	check(err)
	fmt.Printf("diagram->TD round trip identical: %v\n", back.Format() == d.Format())
}

func f2() {
	header("F2 (Fig. 2)", "bridges: k triangles, k+1 base nodes, E/E' cliques")
	p := words.TwoStepPresentation()
	in := reduction.MustBuild(p)
	fmt.Printf("%-8s %-10s %-10s %-10s\n", "len(w)", "nodes", "base", "apex")
	for _, k := range []int{1, 2, 4, 8} {
		w := make(words.Word, k)
		for i := range w {
			w[i] = p.Alphabet.MustSymbol("b")
		}
		br, err := in.BuildBridge(w)
		check(err)
		fmt.Printf("%-8d %-10d %-10d %-10d\n", k, br.Tableau.Len(), len(br.BaseNodes), len(br.ApexNodes))
	}
}

func f3() {
	header("F3 (Fig. 3)", "D1..D4 per equation, D0; antecedent/conclusion shapes")
	in := reduction.MustBuild(words.PowerPresentation())
	for _, d := range in.DsForEquation(0) {
		fmt.Printf("%-22s antecedents=%d full=%v trivial=%v\n",
			d.Name(), d.NumAntecedents(), d.IsFull(), d.IsTrivial())
	}
	fmt.Printf("%-22s antecedents=%d full=%v trivial=%v\n",
		in.D0.Name(), in.D0.NumAntecedents(), in.D0.IsFull(), in.D0.IsTrivial())
}

func e1() {
	header("E1 (Main Thm A)", "derivable goal => chase proves D |= D0")
	fmt.Printf("%-10s %-12s %-9s %-8s %-8s %-10s\n", "instance", "deriv-steps", "verdict", "rounds", "tuples", "time")
	cases := []struct {
		name string
		p    *words.Presentation
	}{
		{"twostep", words.TwoStepPresentation()},
		{"chain1", words.ChainPresentation(1)},
		{"chain2", words.ChainPresentation(2)},
		{"chain3", words.ChainPresentation(3)},
	}
	for _, tc := range cases {
		in := reduction.MustBuild(tc.p)
		dres := words.DeriveGoal(in.Pres, words.DefaultClosureOptions())
		start := time.Now()
		cres, err := chase.Implies(in.D, in.D0, chase.Options{Governor: budget.New(nil, budget.Limits{Rounds: 32, Tuples: 200000}), SemiNaive: true})
		check(err)
		fmt.Printf("%-10s %-12d %-9s %-8d %-8d %-10s\n",
			tc.name, dres.Derivation.Len(), cres.Verdict, cres.Stats.Rounds, cres.Instance.Len(),
			time.Since(start).Round(time.Millisecond))
	}
	fmt.Println("(observed scaling: chain:n needs ~3n rounds and 4n+3 canonical tuples)")

	// Growth curve for chain3: canonical-database size per round.
	in := reduction.MustBuild(words.ChainPresentation(3))
	gres, err := chase.Implies(in.D, in.D0, chase.Options{Governor: budget.New(nil, budget.Limits{Rounds: 32, Tuples: 200000}), SemiNaive: true, KeepHistory: true})
	check(err)
	fmt.Print("chain3 growth (round: tuples):")
	for _, h := range gres.History {
		fmt.Printf(" %d:%d", h.Round, h.TuplesAfter)
	}
	fmt.Println()
}

func e2() {
	header("E2 (Main Thm B)", "finite cancellation witness => verified finite DB counterexample")
	fmt.Printf("%-12s %-8s %-6s %-6s %-10s %-8s\n", "instance", "|G|", "|P|", "|Q|", "db-tuples", "verified")
	for m := 1; m <= 3; m++ {
		wit, p, err := semigroup.NilpotentInterpretationForPowers(m)
		check(err)
		in := reduction.MustBuild(p)
		cm, err := in.BuildCounterModel(wit)
		check(err)
		verified := in.Verify(cm) == nil
		fmt.Printf("%-12s %-8d %-6d %-6d %-10d %-8v\n",
			fmt.Sprintf("nilpotent%d", m), wit.Table.Size(), len(cm.PElems), len(cm.QTriples),
			cm.Instance.Len(), verified)
	}
}

func e3() {
	header("E3 (p.73)", "2n+2 attributes; at most five antecedents")
	fmt.Printf("%-12s %-10s %-12s %-16s\n", "instance", "symbols", "attributes", "max-antecedents")
	for n := 1; n <= 4; n++ {
		p := words.NilpotentSafePresentation(n)
		in := reduction.MustBuild(p)
		fmt.Printf("%-12s %-10d %-12d %-16d\n",
			fmt.Sprintf("nilpotent%d", n), p.Alphabet.Size(), in.Schema.Width(), in.MaxAntecedents())
	}
}

func e4() {
	header("E4 (Main Lemma)", "(2,1)-normalization preserves derivability; expansion factor")
	a := words.MustAlphabet([]string{"A0", "P", "Q", "0"}, "A0", "0")
	fmt.Printf("%-8s %-8s %-8s %-14s\n", "lhs-len", "eqs-in", "eqs-out", "fresh-symbols")
	for _, k := range []int{3, 6, 12} {
		lhs := make(words.Word, k)
		for i := range lhs {
			lhs[i] = a.MustSymbol("P")
		}
		p, err := words.NewPresentation(a, []words.Equation{words.Eq(lhs, words.W(a.MustSymbol("Q")))})
		check(err)
		p = p.WithZeroEquations()
		n, err := words.Normalize(p)
		check(err)
		fmt.Printf("%-8d %-8d %-8d %-14d\n", k, len(p.Equations), len(n.Presentation.Equations), len(n.Definitions))
	}
}

func e5() {
	header("E5 (Post/Turing)", "TM halting -> presentation -> derivable goal")
	fmt.Printf("%-12s %-8s %-8s %-8s %-12s %-10s\n", "machine", "halts", "symbols", "eqs", "deriv-steps", "explored")
	for _, tc := range []struct {
		name  string
		m     *tm.TM
		input []int
	}{
		{"write-one", tm.WriteOneAndHalt(), nil},
		{"flip-flop", tm.FlipFlopAndHalt(), nil},
		{"scan-11", tm.ScanRightAndHalt(), []int{1, 1}},
	} {
		halted, _, _, err := tc.m.Run(tc.input, 1000)
		check(err)
		p, err := tm.EncodePresentation(tc.m, tc.input)
		check(err)
		res := words.DeriveGoal(p, words.ClosureOptions{Governor: budget.New(nil, budget.Limits{Words: 500000})})
		steps := -1
		if res.Derivation != nil {
			steps = res.Derivation.Len()
		}
		fmt.Printf("%-12s %-8v %-8d %-8d %-12d %-10d\n",
			tc.name, halted, p.Alphabet.Size(), len(p.Equations), steps, res.WordsExplored)
	}
}

func e6() {
	header("E6 (Sadri–Ullman)", "full TDs: the chase terminates, implication is decided")
	s := relation.MustSchema("A", "B", "C")
	join := td.MustParse(s, "R(a, b, c) & R(a, b', c') -> R(a, b, c')", "join")
	fmt.Printf("%-14s %-9s %-10s %-8s\n", "goal", "verdict", "fixpoint", "rounds")
	for k := 2; k <= 5; k++ {
		goalText := ""
		for i := 0; i < k; i++ {
			if i > 0 {
				goalText += " & "
			}
			goalText += fmt.Sprintf("R(a, b%d, c%d)", i, i)
		}
		goalText += fmt.Sprintf(" -> R(a, b0, c%d)", k-1)
		goal := td.MustParse(s, goalText, "goal")
		res, err := chase.Implies([]*td.TD{join}, goal, chase.DefaultOptions())
		check(err)
		fmt.Printf("%-14s %-9s %-10v %-8d\n",
			fmt.Sprintf("%d-antecedent", k), res.Verdict, res.FixpointReached, res.Stats.Rounds)
	}
}

func e7() {
	header("E7 (Chandra et al.)", "the EID example: shared existential is strictly stronger")
	s, e := eid.PaperExample()
	inst := relation.NewInstance(s)
	inst.MustAdd(relation.Tuple{0, 0, 0})
	inst.MustAdd(relation.Tuple{0, 1, 1})
	inst.MustAdd(relation.Tuple{1, 0, 1})
	inst.MustAdd(relation.Tuple{2, 1, 0})
	tdA := td.MustParse(s, "R(a, b, c) & R(a, b', c') -> R(x, b, c)", "tdA")
	tdB := td.MustParse(s, "R(a, b, c) & R(a, b', c') -> R(y, b, c')", "tdB")
	okA, _ := tdA.Satisfies(inst)
	okB, _ := tdB.Satisfies(inst)
	okE, _ := e.Satisfies(inst)
	fmt.Printf("instance: 4 tuples; TD split holds: %v & %v; EID with shared a*: %v\n", okA, okB, okE)
	fmt.Printf("=> the conjunctive conclusion is not expressible by its TD projections\n")
}

func e8() {
	header("E8 (proof of B)", "adjoining an identity preserves cancellation")
	fmt.Printf("%-14s %-10s %-14s\n", "semigroup", "order", "G+I cancels")
	cases := []*semigroup.Table{semigroup.NilpotentCyclic(3), semigroup.NilpotentCyclic(10)}
	tb, _ := semigroup.FreeNilpotent(2, 3)
	cases = append(cases, tb)
	for _, g := range cases {
		gp, _ := semigroup.AdjoinIdentity(g)
		fmt.Printf("%-14s %-10d %-14v\n", g.Name(), g.Size(), semigroup.CheckCancellation(gp) == nil)
	}
}

func e9() {
	header("E9 (inseparability)", "dual semidecision: who terminates on what")
	b := core.DefaultBudget()
	b.Chase = chase.Options{Governor: budget.New(nil, budget.Limits{Rounds: 12, Tuples: 60000}), SemiNaive: true}
	b.Closure = words.ClosureOptions{Governor: budget.New(nil, budget.Limits{Words: 3000}), LengthCap: 10}
	b.ModelSearch = search.Options{Orders: budget.Range{Lo: 2, Hi: 4}, Governor: budget.New(nil, budget.Limits{Nodes: 300000})}
	b.FiniteDB = finitemodel.Options{Sizes: budget.Range{Lo: 1, Hi: 2}}
	fmt.Printf("%-12s %-24s %-12s\n", "instance", "verdict", "time")
	for _, tc := range []struct {
		name string
		p    *words.Presentation
	}{
		{"twostep", words.TwoStepPresentation()},
		{"chain2", words.ChainPresentation(2)},
		{"power", words.PowerPresentation()},
		{"nilpotent2", words.NilpotentSafePresentation(2)},
		{"gap", words.IdempotentGapPresentation()},
	} {
		start := time.Now()
		res, err := core.AnalyzePresentation(tc.p, b)
		check(err)
		fmt.Printf("%-12s %-24s %-12s\n", tc.name, res.Verdict, time.Since(start).Round(time.Millisecond))
	}
}

func e10() {
	header("E10 (witness census)", "how rare is part (B)'s witness class among all finite semigroups")
	fmt.Printf("%-7s %-9s %-10s %-10s %-13s %-14s %-10s\n",
		"order", "classes", "has-zero", "has-id", "commutative", "witness-class", "J-trivial")
	for n := 1; n <= 4; n++ {
		c := semigroup.TakeCensus(n)
		fmt.Printf("%-7d %-9d %-10d %-10d %-13d %-14d %-10d\n",
			c.Order, c.Classes, c.WithZero, c.WithIdentity, c.Commutative, c.WitnessClass, c.JTrivial)
	}
	fmt.Println("(class counts cross-validated against OEIS A027851: 1, 5, 24, 188, ...)")
}

func e11() {
	header("E11 (search strategies)", "forward vs bidirectional derivation search; the zero endpoint is high-degree")
	fmt.Printf("%-10s %-22s %-10s %-22s %-10s\n", "instance", "forward", "", "bidirectional", "")
	fmt.Printf("%-10s %-10s %-11s %-10s %-11s\n", "", "verdict", "words", "verdict", "words")
	for _, tc := range []struct {
		name string
		p    *words.Presentation
	}{
		{"chain4", words.ChainPresentation(4)},
		{"chain8", words.ChainPresentation(8)},
		{"twostep", words.TwoStepPresentation()},
	} {
		f := words.DeriveGoal(tc.p, words.DefaultClosureOptions())
		bi := words.DeriveGoalBidirectional(tc.p, words.DefaultClosureOptions())
		fmt.Printf("%-10s %-10s %-11d %-10s %-11d\n",
			tc.name, f.Verdict, f.WordsExplored, bi.Verdict, bi.WordsExplored)
	}
}

func e12() {
	header("E12 (intro motivation)", "redundancy and minimization audits via the inference engine")
	s := relation.MustSchema("A", "B", "C")
	deps, err := td.ParseSet(s, `
join:   R(a, b, c) & R(a, b', c') -> R(a, b, c')
triple: R(a, b, c) & R(a, b', c') & R(a, b'', c'') -> R(a, b, c'')
other:  R(a, b, c) & R(a', b, c') -> R(a, b, c')
`)
	check(err)
	red, err := chase.RedundantMembers(deps, chase.DefaultOptions())
	check(err)
	fmt.Printf("redundant members of {join, triple, other}: %v (join ≡ triple via antecedent collapse)\n", red)
	bloated := td.MustParse(s, "R(a, b, c) & R(a, b', c') & R(a, b'', c'') -> R(a, b, c'')", "bloated")
	min, err := chase.MinimizeAntecedents(bloated, chase.DefaultOptions())
	check(err)
	fmt.Printf("antecedent minimization: %d -> %d antecedents\n", bloated.NumAntecedents(), min.NumAntecedents())
	eq, err := chase.Equivalent([]*td.TD{bloated}, []*td.TD{min}, chase.DefaultOptions())
	check(err)
	fmt.Printf("minimized form equivalent: %v\n", eq == chase.Implied)
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}

// Machine-readable portfolio benchmarks: `tdbench -portfoliojson FILE`
// compares the two presentation-level front-ends — the static race
// (core.AnalyzePresentationRace: every arm holds its whole budget up
// front) and the adaptive portfolio (portfolio.AnalyzePresentation:
// leases reallocated from live progress signals) — on the same presets
// under matched meter ceilings, and writes one JSON document
// (BENCH_portfolio.json in-repo).
//
// The grid is chosen to expose both regimes:
//
//   - power, twostep, chain:2 are settled quickly by both front-ends;
//     the portfolio must stay within noise of the race here (adaptivity
//     must not tax the easy cases);
//   - collapse:4 is the KB-decidable presentation the race cannot
//     answer: its self-expanding equations defeat the BFS closure (the
//     derivation arm exhausts its word budget) and its alphabet makes
//     the counter-model search exhaust its node budget, while
//     Knuth–Bendix completion is confluent within a few sweeps. The
//     portfolio's kb arm settles it in its first lease — the headline
//     row, required to win by at least 2x.
//
// The gap preset is deliberately absent: its chase instance has no safe
// static budget (phase-1 matching is only checkpointed at round
// boundaries), so a race side would need a wall-clock deadline and the
// comparison would measure the deadline, not the engines.
//
// `tdbench -checkportfolio FILE` validates a previously written report:
// it must parse, every workload must carry both sides, and no workload
// may have the two front-ends reach CONTRADICTORY definitive verdicts
// (unknown-vs-definitive is fine — answering where the race cannot is
// the portfolio's purpose). Full reports additionally enforce the
// acceptance thresholds; -portfolioquick reports (single timed runs, CI
// smoke) are checked for structure and consistency only.
package main

import (
	"fmt"
	"runtime"

	"templatedep/internal/budget"
	"templatedep/internal/core"
	"templatedep/internal/portfolio"
	"templatedep/internal/rewrite"
	"templatedep/internal/words"
)

type portfolioSide struct {
	NsPerOp float64 `json:"ns_per_op"`
	Verdict string  `json:"verdict"`
	// Winner names the settling arm ("derivation"/"model-search" for the
	// race; "kb"/"model-search"/"chase"/"eid" for the portfolio).
	Winner string `json:"winner,omitempty"`
	// Ticks and Decisions report the portfolio's scheduler work; zero on
	// the race side.
	Ticks     int `json:"ticks,omitempty"`
	Decisions int `json:"decisions,omitempty"`
}

type portfolioWorkload struct {
	Name      string        `json:"name"`
	Race      portfolioSide `json:"race"`
	Portfolio portfolioSide `json:"portfolio"`
	// Speedup is race ns over portfolio ns (>1 means the portfolio was
	// faster).
	Speedup float64 `json:"speedup"`
	// Consistent is false only when both sides reached definitive but
	// DIFFERENT verdicts — the soundness requirement.
	Consistent bool `json:"consistent"`
}

type portfolioSummary struct {
	// WinnerCounts is the portfolio's arm-win distribution across the
	// grid (verdict-producing arm per preset; "none" for unknown).
	WinnerCounts map[string]int `json:"winner_counts"`
	// KBSpeedup is the portfolio's speedup on the KB-decidable headline
	// row, and KBWorkload names it.
	KBSpeedup  float64 `json:"kb_speedup"`
	KBWorkload string  `json:"kb_workload"`
	// WithinNoise counts workloads where the portfolio cost at most 1.5x
	// the race plus 50ms of slack.
	WithinNoise   int  `json:"within_noise"`
	AllConsistent bool `json:"all_consistent"`
}

type portfolioReport struct {
	reportHost
	NumCPU int `json:"num_cpu"`
	// Quick marks single-timed-run reports (CI smoke): structure and
	// consistency are meaningful, the timings are not.
	Quick     bool                `json:"quick"`
	Workloads []portfolioWorkload `json:"workloads"`
	Summary   portfolioSummary    `json:"summary"`
}

// portfolioBenchPresets is the comparison grid (see the package comment
// for why gap is excluded).
var portfolioBenchPresets = []string{"power", "twostep", "chain:2", "collapse:4"}

// portfolioRaceBudget is the static side's configuration: each arm holds
// its whole meter budget up front.
func portfolioRaceBudget() core.Budget {
	b := core.DefaultBudget()
	b.Closure.Governor = budget.New(nil, budget.Limits{Words: 100_000})
	b.ModelSearch.Governor = budget.New(nil, budget.Limits{Nodes: 300_000})
	b.ModelSearch.Orders = budget.Range{Lo: 2, Hi: 6}
	return b
}

// portfolioBenchOptions matches the adaptive side's hard ceilings to the
// race budgets: same node budget and order window for the counter-model
// search, the engine-default rule budget for completion, and the
// tdinfer-default chase meters for the two chase arms (which the race
// does not run at all — the comparison charges the portfolio for its
// extra arms rather than crediting them).
func portfolioBenchOptions() portfolio.Options {
	opt := portfolio.Options{}
	opt.Completion.Governor = budget.New(nil, rewrite.DefaultLimits)
	opt.ModelSearch.Governor = budget.New(nil, budget.Limits{Nodes: 300_000})
	opt.ModelSearch.Orders = budget.Range{Lo: 2, Hi: 6}
	opt.Chase.Governor = budget.New(nil, budget.Limits{Rounds: 64, Tuples: 100_000})
	opt.EID.Governor = budget.New(nil, budget.Limits{Rounds: 64, Tuples: 100_000})
	return opt
}

func writePortfolioJSON(path string, quick bool) {
	fail := reportFail("portfolio")
	reportProbe(path, fail)

	rep := portfolioReport{
		reportHost: newReportHost(),
		NumCPU:     runtime.NumCPU(),
		Quick:      quick,
		Summary:    portfolioSummary{WinnerCounts: map[string]int{}, AllConsistent: true},
	}

	measure := func(run func()) float64 { return measureNs(quick, run) }

	for _, preset := range portfolioBenchPresets {
		p, err := words.Preset(preset)
		check(err)

		rres, err := core.AnalyzePresentationRace(p, portfolioRaceBudget())
		check(err)
		raceNs := measure(func() {
			_, err := core.AnalyzePresentationRace(p, portfolioRaceBudget())
			check(err)
		})

		pres, err := portfolio.AnalyzePresentation(p, portfolioBenchOptions())
		check(err)
		pfNs := measure(func() {
			_, err := portfolio.AnalyzePresentation(p, portfolioBenchOptions())
			check(err)
		})

		w := portfolioWorkload{
			Name: preset,
			Race: portfolioSide{NsPerOp: raceNs, Verdict: rres.Verdict.String(), Winner: rres.Winner},
			Portfolio: portfolioSide{NsPerOp: pfNs, Verdict: pres.Verdict.String(),
				Winner: pres.Winner, Ticks: pres.Ticks, Decisions: len(pres.Decisions)},
			Speedup:    raceNs / pfNs,
			Consistent: portfolioConsistent(rres.Verdict.String(), pres.Verdict.String()),
		}
		rep.Workloads = append(rep.Workloads, w)

		winner := pres.Winner
		if winner == "" {
			winner = "none"
		}
		rep.Summary.WinnerCounts[winner]++
		if !w.Consistent {
			rep.Summary.AllConsistent = false
		}
		if winner == "kb" && w.Speedup > rep.Summary.KBSpeedup {
			rep.Summary.KBSpeedup = w.Speedup
			rep.Summary.KBWorkload = w.Name
		}
		if pfNs <= raceNs*1.5+50e6 {
			rep.Summary.WithinNoise++
		}
		fmt.Printf("%-12s race %12.0f ns (%s/%s)   portfolio %12.0f ns (%s/%s, %d ticks)  %5.2fx\n",
			preset, raceNs, w.Race.Verdict, orNone(w.Race.Winner),
			pfNs, w.Portfolio.Verdict, orNone(w.Portfolio.Winner), w.Portfolio.Ticks, w.Speedup)
	}

	reportWrite(path, rep, fail)
	fmt.Printf("\nwrote %d workloads to %s (kb headline %.2fx on %s, %d/%d within noise)\n",
		len(rep.Workloads), path, rep.Summary.KBSpeedup, rep.Summary.KBWorkload,
		rep.Summary.WithinNoise, len(rep.Workloads))
}

func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}

// portfolioConsistent reports whether two verdict strings can honestly
// describe one instance: equal, or at least one of them unknown.
func portfolioConsistent(a, b string) bool {
	return a == b || a == "unknown" || b == "unknown"
}

// checkPortfolioJSON validates a BENCH_portfolio.json. Structure and
// verdict consistency always; the acceptance thresholds — at least two
// presets within noise of the race, and a kb win of at least 2x on a
// KB-decidable presentation — only for full (non-quick) reports, since a
// single timed run proves nothing about wall-clock.
func checkPortfolioJSON(path string) {
	fail := reportFail(path)
	var rep portfolioReport
	reportRead(path, &rep, false, fail)
	if len(rep.Workloads) == 0 {
		fail("no workloads")
	}
	for _, w := range rep.Workloads {
		if w.Race.NsPerOp <= 0 || w.Portfolio.NsPerOp <= 0 {
			fail("workload %s missing a timed side", w.Name)
		}
		if !w.Consistent || !portfolioConsistent(w.Race.Verdict, w.Portfolio.Verdict) {
			fail("workload %s: contradictory definitive verdicts (race %s, portfolio %s)",
				w.Name, w.Race.Verdict, w.Portfolio.Verdict)
		}
	}
	if !rep.Summary.AllConsistent {
		fail("summary reports inconsistent verdicts")
	}
	if !rep.Quick {
		if rep.Summary.WithinNoise < 2 {
			fail("portfolio within noise of the race on only %d presets (want >= 2)", rep.Summary.WithinNoise)
		}
		if rep.Summary.KBSpeedup < 2 {
			fail("kb headline speedup %.2fx (want >= 2x on a KB-decidable presentation)", rep.Summary.KBSpeedup)
		}
	}
	fmt.Printf("%s: %d workloads, verdicts consistent; kb headline %.2fx (%s), %d/%d within noise%s\n",
		path, len(rep.Workloads), rep.Summary.KBSpeedup, rep.Summary.KBWorkload,
		rep.Summary.WithinNoise, len(rep.Workloads),
		map[bool]string{true: " [quick: thresholds not enforced]", false: ""}[rep.Quick])
}

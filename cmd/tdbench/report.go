// Shared scaffolding for the JSON report emitters (-benchjson,
// -searchjson, -portfoliojson, -shardjson, -loadjson, -fuzzjson): the
// provenance header every report carries, the write/validate plumbing, and
// the quick-vs-benchmark measurement switch. Each emitter keeps its own
// payload shape and acceptance gates; only the mechanics live here.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"
)

// reportHost is the provenance header embedded in every report: when it
// was generated and by which toolchain/platform. Older committed reports
// predate the goos/goarch fields, so validators must treat them as
// optional.
type reportHost struct {
	Generated string `json:"generated"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos,omitempty"`
	GOARCH    string `json:"goarch,omitempty"`
}

func newReportHost() reportHost {
	return reportHost{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
}

// reportFail returns the standard failure closure of an emitter or
// validator: one line to stderr under the given scope (a flag name or a
// report path), then a nonzero exit.
func reportFail(scope string) func(format string, args ...any) {
	return func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "tdbench: %s: %s\n", scope, fmt.Sprintf(format, args...))
		os.Exit(1)
	}
}

// reportProbe fails fast on an unwritable output path, before the emitter
// spends minutes measuring.
func reportProbe(path string, fail func(string, ...any)) {
	f, err := os.Create(path)
	if err != nil {
		fail("%v", err)
	}
	f.Close()
}

// reportWrite renders rep as indented JSON, newline-terminated — the one
// on-disk format of every BENCH_*.json.
func reportWrite(path string, rep any, fail func(string, ...any)) {
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail("%v", err)
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		fail("%v", err)
	}
}

// reportRead parses a report into rep. strict additionally rejects
// unknown fields, so a validator catches schema drift between the
// committed report and the current struct, not just corruption.
func reportRead(path string, rep any, strict bool, fail func(string, ...any)) {
	data, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	if strict {
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		if err := dec.Decode(rep); err != nil {
			fail("parse: %v", err)
		}
		return
	}
	if err := json.Unmarshal(data, rep); err != nil {
		fail("parse: %v", err)
	}
}

// measureNs times run: a full testing.Benchmark loop normally, a single
// timed run under a -*quick flag (CI smoke — structure over statistics).
func measureNs(quick bool, run func()) float64 {
	if quick {
		start := time.Now()
		run()
		return float64(time.Since(start).Nanoseconds())
	}
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run()
		}
	})
	return float64(r.T.Nanoseconds()) / float64(r.N)
}

// Load harness for the inference service: `tdbench -loadjson FILE` hammers
// a running tdserve with a duplicate-heavy mix of problems from a pool of
// concurrent workers, then writes a JSON report with client-observed
// latency percentiles and the cache/dedup hit rate. The workload is mostly
// repeats by construction — N requests round-robin over a handful of
// problems, one of which is a symbol-renamed twin of another — so a
// healthy server must answer most of it from the canonical cache or by
// collapsing in-flight duplicates. The harness exits nonzero when the
// cache never hits, or when repeats of one problem disagree on the
// verdict or canonical key: the service-level form of the engines'
// determinism guarantee.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"templatedep/internal/serve"
)

// loadProblems is the request mix. The last entry is the power preset
// under renamed symbols and without its zero equations spelled out — it
// must land on the same cache line as {"preset":"power"}, exercising
// canonicalization end to end over HTTP.
func loadProblems() []serve.Request {
	reqs := []serve.Request{
		{Preset: "power"},
		{Preset: "twostep"},
		{Preset: "gap"},
		{Preset: "chain:2"},
		{Preset: "nilpotent:2"},
		{Alphabet: []string{"A0", "Q", "Z"}, A0: "A0", Zero: "Z", Equations: []string{"A0 A0 = Q"}},
	}
	return reqs
}

type loadResult struct {
	// Problem is the index into the request mix; Key/Verdict are as
	// reported by the server; Source is "cold", "warm", "cache", "dedup",
	// "store", or "peer".
	Problem   int     `json:"problem"`
	Key       string  `json:"key"`
	Source    string  `json:"source"`
	Verdict   string  `json:"verdict"`
	LatencyMS float64 `json:"latency_ms"`
}

type loadReport struct {
	reportHost
	Server    string  `json:"server"`
	Requests  int     `json:"requests"`
	Workers   int     `json:"workers"`
	Problems  int     `json:"problems"`
	Cold      int     `json:"cold"`
	Warm      int     `json:"warm"`
	CacheHits int     `json:"cache_hits"`
	Dedups    int     `json:"dedups"`
	StoreHits int     `json:"store_hits"`
	PeerFills int     `json:"peer_fills"`
	HitRate   float64 `json:"hit_rate"`
	// MetricsDelta is the server-side counter movement over the burst
	// (after minus before, from GET /metrics), cross-checked against the
	// client-observed source totals above — a mismatch fails the run. Only
	// the serve.* counters the harness validates are recorded.
	MetricsDelta map[string]int64 `json:"metrics_delta,omitempty"`
	P50MS        float64          `json:"p50_ms"`
	P90MS        float64          `json:"p90_ms"`
	P99MS        float64          `json:"p99_ms"`
	MaxMS        float64          `json:"max_ms"`
	// Results carries one row per request only when the run is small
	// enough to be worth inlining (<= 64 requests); summaries above are
	// always present.
	Results []loadResult `json:"results,omitempty"`
}

func writeLoadJSON(path, server string, n, c int) {
	fail := reportFail("load")
	if n <= 0 || c <= 0 {
		fail("-loadn and -loadc must be positive")
	}
	reportProbe(path, fail)

	problems := loadProblems()
	bodies := make([][]byte, len(problems))
	for i, p := range problems {
		b, err := json.Marshal(p)
		if err != nil {
			fail("marshal problem %d: %v", i, err)
		}
		bodies[i] = b
	}

	client := &http.Client{Timeout: 60 * time.Second}
	before, err := fetchCounters(client, server)
	if err != nil {
		fail("metrics snapshot before burst: %v", err)
	}
	url := server + "/infer"
	results := make([]loadResult, n)
	var wg sync.WaitGroup
	errCh := make(chan error, c)
	jobs := make(chan int)
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				pi := i % len(problems)
				start := time.Now()
				httpRes, err := client.Post(url, "application/json", bytes.NewReader(bodies[pi]))
				if err != nil {
					select {
					case errCh <- err:
					default:
					}
					return
				}
				var res serve.Response
				decErr := json.NewDecoder(httpRes.Body).Decode(&res)
				httpRes.Body.Close()
				if decErr != nil || httpRes.StatusCode != http.StatusOK {
					select {
					case errCh <- fmt.Errorf("request %d (problem %d): status %d, decode err %v", i, pi, httpRes.StatusCode, decErr):
					default:
					}
					return
				}
				results[i] = loadResult{
					Problem:   pi,
					Key:       res.Key,
					Source:    res.Source,
					Verdict:   res.Verdict.String(),
					LatencyMS: float64(time.Since(start).Microseconds()) / 1e3,
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	select {
	case err := <-errCh:
		fail("%v", err)
	default:
	}

	// Consistency sweep: all repeats of one problem must report the same
	// key and verdict, cold or cached. The renamed twin (last problem)
	// must additionally share problem 0's key — that is the
	// canonicalization contract observed from outside the process.
	firstFor := make(map[int]loadResult)
	rep := loadReport{
		reportHost: newReportHost(),
		Server:     server,
		Requests:   n,
		Workers:    c,
		Problems:   len(problems),
	}
	latencies := make([]float64, 0, n)
	for i, r := range results {
		if first, ok := firstFor[r.Problem]; ok {
			if r.Verdict != first.Verdict {
				fail("problem %d: verdict flipped across repeats (%q then %q at request %d)", r.Problem, first.Verdict, r.Verdict, i)
			}
			if r.Key != first.Key {
				fail("problem %d: canonical key changed across repeats (%q then %q at request %d)", r.Problem, first.Key, r.Key, i)
			}
		} else {
			firstFor[r.Problem] = r
		}
		switch r.Source {
		case "cold":
			rep.Cold++
		case "warm":
			rep.Warm++
		case "cache":
			rep.CacheHits++
		case "dedup":
			rep.Dedups++
		case "store":
			rep.StoreHits++
		case "peer":
			rep.PeerFills++
		default:
			fail("request %d: unknown source %q", i, r.Source)
		}
		latencies = append(latencies, r.LatencyMS)
	}
	if n > len(problems) && rep.CacheHits+rep.Dedups+rep.StoreHits == 0 {
		fail("sent %d requests over %d problems but observed zero cache, store, or dedup hits — the verdict cache is not working", n, len(problems))
	}

	// Cross-check the client's view against the server's own counters: the
	// /metrics movement over the burst must equal what the responses
	// claimed, source by source. (The harness assumes it is the server's
	// only client — true in CI, where this gate runs.)
	after, err := fetchCounters(client, server)
	if err != nil {
		fail("metrics snapshot after burst: %v", err)
	}
	rep.MetricsDelta = make(map[string]int64)
	for name, want := range map[string]int64{
		"serve.requests":     int64(n),
		"serve.cache_hits":   int64(rep.CacheHits),
		"serve.dedups":       int64(rep.Dedups),
		"serve.warm":         int64(rep.Warm),
		"serve.cache_misses": int64(rep.Cold + rep.Warm),
		"serve.store_hits":   int64(rep.StoreHits),
		"serve.peer_ok":      int64(rep.PeerFills),
	} {
		got := after[name] - before[name]
		rep.MetricsDelta[name] = got
		if got != want {
			fail("server counter %s moved by %d over the burst but clients observed %d — server metrics and client outcomes disagree", name, got, want)
		}
	}
	if twin, ok := firstFor[len(problems)-1]; ok {
		if power, ok2 := firstFor[0]; ok2 && twin.Key != power.Key {
			fail("renamed twin keyed %q but preset power keyed %q — canonicalization broken over HTTP", twin.Key, power.Key)
		}
	}

	// Store hits are hits — answered without any engine run.
	rep.HitRate = float64(rep.CacheHits+rep.Dedups+rep.StoreHits) / float64(n)
	sort.Float64s(latencies)
	pct := func(p float64) float64 {
		idx := int(p * float64(len(latencies)-1))
		return latencies[idx]
	}
	rep.P50MS, rep.P90MS, rep.P99MS = pct(0.50), pct(0.90), pct(0.99)
	rep.MaxMS = latencies[len(latencies)-1]
	if n <= 64 {
		rep.Results = results
	}

	reportWrite(path, rep, fail)
	fmt.Printf("load: %d requests x %d workers over %d problems: cold=%d cache=%d dedup=%d store=%d peer=%d hit_rate=%.2f p50=%.1fms p99=%.1fms max=%.1fms\n",
		n, c, len(problems), rep.Cold, rep.CacheHits, rep.Dedups, rep.StoreHits, rep.PeerFills, rep.HitRate, rep.P50MS, rep.P99MS, rep.MaxMS)
	fmt.Printf("metrics delta validated against client-observed sources\n")
	fmt.Printf("wrote %s\n", path)
}

// fetchCounters snapshots a tdserve replica's counter block.
func fetchCounters(client *http.Client, server string) (map[string]int64, error) {
	resp, err := client.Get(server + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: status %d", resp.StatusCode)
	}
	var m struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, err
	}
	if m.Counters == nil {
		m.Counters = map[string]int64{}
	}
	return m.Counters, nil
}

// Shard harness for the sharded, persistent serving tier: `tdbench
// -shardjson FILE` self-hosts a 3-replica tdserve ring in-process (real
// TCP listeners, real peer-fill HTTP, one disk store per replica), drives
// a duplicate-heavy burst whose canonical key-space is split across the
// owners, then kills one replica, restarts it over its surviving store,
// and replays the keys it had answered — every one must come back with
// Source "store", without an engine run. The report (BENCH_serve.json in
// CI) carries per-shard hit/peer-fill counts, the restart-recovery
// outcome, and client-observed latency percentiles; `tdbench -checkserve
// FILE` validates it structurally.
//
// The harness is deliberately end-to-end: verdicts cross replica
// boundaries only as certificates that the receiving replica re-verifies,
// and restart warmth comes only from the append-log the killed process
// left behind — the two properties the sharded tier exists to provide.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"time"

	"templatedep/internal/obs"
	"templatedep/internal/serve"
	"templatedep/internal/store"
)

// shardProblems is the burst mix: definitive and unknown verdicts, both
// problem modes, plus a renamed twin that must land on another problem's
// canonical owner. More problems than replicas, so every replica owns
// some keys and misses others.
func shardProblems() []serve.Request {
	return []serve.Request{
		{Preset: "power"},
		{Preset: "twostep"},
		{Preset: "gap"},
		{Preset: "chain:2"},
		{Preset: "chain:3"},
		{Preset: "nilpotent:2"},
		{Schema: []string{"A", "B", "C"}, Deps: []string{"join: R(a, b, c) & R(a, b', c') -> R(a, b, c')"},
			Goal: "R(a, b, c) & R(a, b', c') & R(a, b'', c'') -> R(a, b, c'')"},
		{Alphabet: []string{"A0", "Q", "Z"}, A0: "A0", Zero: "Z", Equations: []string{"A0 A0 = Q"}},
	}
}

// replica is one in-process ring member: a serve.Server with its own disk
// store and counters behind a real TCP listener, so peer fill runs over
// actual HTTP.
type replica struct {
	self     string
	addr     string
	storeDir string
	counters *obs.Counters
	st       *store.Store
	s        *serve.Server
	httpSrv  *http.Server
}

// start opens (or reopens) the replica's store and begins serving on addr
// (":0" picks a port on first start; restarts rebind the recorded addr so
// peer URLs stay valid).
func (r *replica) start(peers []string) error {
	st, err := store.Open(store.DefaultPath(r.storeDir), store.Options{
		Sink: obs.NewCounterSink(r.counters),
	})
	if err != nil {
		return err
	}
	r.st = st
	r.s = serve.New(serve.Config{
		RequestTimeout: 30 * time.Second,
		Workers:        runtime.GOMAXPROCS(0),
		Counters:       r.counters,
		Store:          st,
		Peers:          peers,
		Self:           r.self,
		PeerTimeout:    5 * time.Second,
	})
	ln, err := net.Listen("tcp", r.addr)
	if err != nil {
		return err
	}
	r.addr = ln.Addr().String()
	r.httpSrv = &http.Server{Handler: r.s.Handler()}
	go r.httpSrv.Serve(ln)
	return nil
}

// kill tears the replica down the hard-ish way: the listener drops
// immediately (peers start seeing "down"), in-flight runs drain, and the
// store handle closes. What persists is exactly the append-log.
func (r *replica) kill() error {
	r.httpSrv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	r.s.Shutdown(ctx)
	return r.st.Close()
}

type shardPhase struct {
	Requests  int     `json:"requests"`
	Cold      int     `json:"cold"`
	Warm      int     `json:"warm"`
	CacheHits int     `json:"cache_hits"`
	Dedups    int     `json:"dedups"`
	StoreHits int     `json:"store_hits"`
	PeerFills int     `json:"peer_fills"`
	HitRate   float64 `json:"hit_rate"`
	P50MS     float64 `json:"p50_ms"`
	P90MS     float64 `json:"p90_ms"`
	P99MS     float64 `json:"p99_ms"`
	MaxMS     float64 `json:"max_ms"`
}

type shardShard struct {
	URL         string  `json:"url"`
	Requests    int64   `json:"requests"`
	CacheMisses int64   `json:"cache_misses"`
	CacheHits   int64   `json:"cache_hits"`
	StoreHits   int64   `json:"store_hits"`
	PeerFills   int64   `json:"peer_fills"`
	PeerOK      int64   `json:"peer_ok"`
	StorePuts   int64   `json:"store_puts"`
	HitRate     float64 `json:"hit_rate"`
}

type shardRestart struct {
	// Replica is the index of the killed-and-restarted ring member;
	// RecoveredRecords is what its store replayed on reopen.
	Replica          int `json:"replica"`
	RecoveredRecords int `json:"recovered_records"`
	// RepeatedKeys is how many previously-answered problems were replayed
	// at it; StoreHits of them were answered from the disk store and
	// Recomputes ran an engine (the acceptance gate demands 0).
	RepeatedKeys int `json:"repeated_keys"`
	StoreHits    int `json:"store_hits"`
	Recomputes   int `json:"recomputes"`
}

type shardReport struct {
	reportHost
	Replicas int          `json:"replicas"`
	Problems int          `json:"problems"`
	Burst    shardPhase   `json:"burst"`
	PerShard []shardShard `json:"per_shard"`
	Restart  shardRestart `json:"restart"`
	// PeerFillsTotal / PeerOKTotal aggregate the ring's fill attempts and
	// adoptions over the whole run (attempts also count down/unknown/
	// rejected probes, so attempts >= adoptions always).
	PeerFillsTotal int64 `json:"peer_fills_total"`
	PeerOKTotal    int64 `json:"peer_ok_total"`
}

func writeShardJSON(path string, quick bool) {
	fail := reportFail("shard")
	reportProbe(path, fail)

	const nReplicas = 3
	rounds := 6 // burst rounds over the problem mix
	if quick {
		rounds = 3
	}
	baseDir, err := os.MkdirTemp("", "tdshard")
	if err != nil {
		fail("%v", err)
	}
	defer os.RemoveAll(baseDir)

	// Bind listeners first so every replica knows the full peer list at
	// construction; :0 picks ports, then the recorded addresses are final.
	replicas := make([]*replica, nReplicas)
	peers := make([]string, nReplicas)
	for i := range replicas {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fail("%v", err)
		}
		addr := ln.Addr().String()
		ln.Close() // start() rebinds; the port stays ours in practice
		dir := fmt.Sprintf("%s/replica%d", baseDir, i)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fail("%v", err)
		}
		replicas[i] = &replica{
			self:     "http://" + addr,
			addr:     addr,
			storeDir: dir,
			counters: obs.NewCounters(),
		}
		peers[i] = replicas[i].self
	}
	for _, r := range replicas {
		if err := r.start(peers); err != nil {
			fail("start %s: %v", r.self, err)
		}
	}
	defer func() {
		for _, r := range replicas {
			if r.httpSrv != nil {
				r.httpSrv.Close()
			}
		}
	}()

	problems := shardProblems()
	bodies := make([][]byte, len(problems))
	for i, p := range problems {
		b, err := json.Marshal(p)
		if err != nil {
			fail("marshal problem %d: %v", i, err)
		}
		bodies[i] = b
	}
	client := &http.Client{Timeout: 60 * time.Second}
	ask := func(replicaIdx, problemIdx int) (serve.Response, float64) {
		start := time.Now()
		httpRes, err := client.Post(replicas[replicaIdx].self+"/infer",
			"application/json", bytes.NewReader(bodies[problemIdx]))
		if err != nil {
			fail("replica %d problem %d: %v", replicaIdx, problemIdx, err)
		}
		defer httpRes.Body.Close()
		var res serve.Response
		if err := json.NewDecoder(httpRes.Body).Decode(&res); err != nil || httpRes.StatusCode != http.StatusOK {
			fail("replica %d problem %d: status %d decode %v", replicaIdx, problemIdx, httpRes.StatusCode, err)
		}
		return res, float64(time.Since(start).Microseconds()) / 1e3
	}

	// Phase 1 — duplicate-heavy burst, keys split across owners: every
	// round sends every problem to every replica, so each key is answered
	// once by its owner (cold), adopted by the others (peer), and then
	// repeats hit local caches.
	rep := shardReport{
		reportHost: newReportHost(),
		Replicas:   nReplicas,
		Problems:   len(problems),
	}
	var latencies []float64
	verdictFor := map[string]string{}
	askedOf := make([]map[int]bool, nReplicas) // problems each replica answered
	for i := range askedOf {
		askedOf[i] = map[int]bool{}
	}
	for round := 0; round < rounds; round++ {
		for pi := range problems {
			for ri := range replicas {
				res, lat := ask(ri, pi)
				rep.Burst.Requests++
				latencies = append(latencies, lat)
				askedOf[ri][pi] = true
				if prev, ok := verdictFor[res.Key]; ok && prev != res.Verdict.String() {
					fail("key %s: verdict flipped across replicas/rounds (%s then %s)", res.Key, prev, res.Verdict)
				}
				verdictFor[res.Key] = res.Verdict.String()
				switch res.Source {
				case "cold":
					rep.Burst.Cold++
				case "warm":
					rep.Burst.Warm++
				case "cache":
					rep.Burst.CacheHits++
				case "dedup":
					rep.Burst.Dedups++
				case "store":
					rep.Burst.StoreHits++
				case "peer":
					rep.Burst.PeerFills++
				default:
					fail("unknown source %q", res.Source)
				}
			}
		}
	}
	rep.Burst.HitRate = float64(rep.Burst.CacheHits+rep.Burst.Dedups+rep.Burst.StoreHits) /
		float64(rep.Burst.Requests)
	sort.Float64s(latencies)
	pct := func(p float64) float64 { return latencies[int(p*float64(len(latencies)-1))] }
	rep.Burst.P50MS, rep.Burst.P90MS, rep.Burst.P99MS = pct(0.50), pct(0.90), pct(0.99)
	rep.Burst.MaxMS = latencies[len(latencies)-1]

	// Phase 2 — kill one replica and restart it over its surviving store.
	// While it is down its peers keep answering (their ring probes fail
	// fast to local computes), which the -checkserve gate does not need to
	// see — the restart-warm property is the acceptance criterion.
	victim := nReplicas - 1
	if err := replicas[victim].kill(); err != nil {
		fail("kill replica %d: %v", victim, err)
	}
	// One mid-outage probe per problem at a survivor: the ring must keep
	// answering with the victim down.
	for pi := range problems {
		if res, _ := ask(0, pi); res.Verdict.String() == "" {
			fail("survivor returned empty verdict during outage")
		}
	}
	recoverBase := replicas[victim].counters.Get("store.recovered_records")
	if err := replicas[victim].start(peers); err != nil {
		fail("restart replica %d: %v", victim, err)
	}
	rep.Restart.Replica = victim
	rep.Restart.RecoveredRecords = int(replicas[victim].counters.Get("store.recovered_records") - recoverBase)
	if rep.Restart.RecoveredRecords == 0 {
		fail("restarted replica recovered 0 records — write-through never reached disk")
	}

	// Phase 3 — replay every problem the victim had answered before the
	// kill, at the victim. Its in-memory cache died with the process, so
	// the only non-engine path is the disk store: the first repeat of each
	// canonical key must come back Source "store" with zero engine runs.
	// Problems that canonicalize to an already-replayed key (the renamed
	// twin shares the power preset's key) legitimately hit the in-memory
	// cache the first replay just repopulated, so RepeatedKeys counts
	// unique keys, not problems.
	missBase := replicas[victim].counters.Get("serve.cache_misses")
	replayed := make(map[string]bool)
	for pi := range problems {
		if !askedOf[victim][pi] {
			continue
		}
		res, _ := ask(victim, pi)
		if prev := verdictFor[res.Key]; prev != res.Verdict.String() {
			fail("key %s: restart flipped the verdict (%s then %s)", res.Key, prev, res.Verdict)
		}
		if replayed[res.Key] {
			continue
		}
		replayed[res.Key] = true
		rep.Restart.RepeatedKeys++
		if res.Source == "store" {
			rep.Restart.StoreHits++
		}
	}
	rep.Restart.Recomputes = int(replicas[victim].counters.Get("serve.cache_misses") - missBase)
	if rep.Restart.StoreHits != rep.Restart.RepeatedKeys {
		fail("restart-warm recovery incomplete: %d of %d repeated keys served from the store",
			rep.Restart.StoreHits, rep.Restart.RepeatedKeys)
	}
	if rep.Restart.Recomputes != 0 {
		fail("restarted replica re-ran %d engines for keys its store already answers", rep.Restart.Recomputes)
	}

	for _, r := range replicas {
		misses := r.counters.Get("serve.cache_misses")
		requests := r.counters.Get("serve.requests")
		hits := r.counters.Get("serve.cache_hits")
		sh := shardShard{
			URL:         r.self,
			Requests:    requests,
			CacheMisses: misses,
			CacheHits:   hits,
			StoreHits:   r.counters.Get("serve.store_hits"),
			PeerFills:   r.counters.Get("serve.peer_fills"),
			PeerOK:      r.counters.Get("serve.peer_ok"),
			StorePuts:   r.counters.Get("store.puts"),
		}
		if requests > 0 {
			sh.HitRate = float64(hits+sh.StoreHits) / float64(requests)
		}
		rep.PerShard = append(rep.PerShard, sh)
		rep.PeerFillsTotal += sh.PeerFills
		rep.PeerOKTotal += sh.PeerOK
	}
	if rep.PeerOKTotal == 0 {
		fail("no peer fill was ever adopted — the ring is not sharing verdicts")
	}

	for _, r := range replicas {
		r.kill()
	}

	reportWrite(path, rep, fail)
	fmt.Printf("shard: %d replicas x %d problems x %d rounds: burst hit_rate=%.2f peer_ok=%d; restart: %d records recovered, %d/%d repeats from store, %d recomputes\n",
		nReplicas, len(problems), rounds, rep.Burst.HitRate, rep.PeerOKTotal,
		rep.Restart.RecoveredRecords, rep.Restart.StoreHits, rep.Restart.RepeatedKeys, rep.Restart.Recomputes)
	fmt.Printf("wrote %s\n", path)
}

// checkServeJSON validates a -shardjson report: structure, internal
// consistency, and the acceptance gates (peer fills adopted, restart
// answered from the store without recompute). Used by ci.sh on the
// committed BENCH_serve.json.
func checkServeJSON(path string) {
	fail := reportFail("checkserve: " + path)
	var rep shardReport
	reportRead(path, &rep, true, fail)
	if rep.Replicas != 3 {
		fail("replicas = %d, want 3", rep.Replicas)
	}
	if rep.Problems <= rep.Replicas {
		fail("problems = %d: need more problems than replicas for the key-space split to mean anything", rep.Problems)
	}
	b := rep.Burst
	if b.Requests <= 0 {
		fail("burst carries no requests")
	}
	if got := b.Cold + b.Warm + b.CacheHits + b.Dedups + b.StoreHits + b.PeerFills; got != b.Requests {
		fail("burst sources sum to %d of %d requests", got, b.Requests)
	}
	if b.HitRate <= 0 || b.HitRate >= 1 {
		fail("burst hit_rate = %v, want strictly between 0 and 1 (some colds, mostly repeats)", b.HitRate)
	}
	if !(b.P50MS > 0 && b.P50MS <= b.P90MS && b.P90MS <= b.P99MS && b.P99MS <= b.MaxMS) {
		fail("latency percentiles not ordered: p50=%v p90=%v p99=%v max=%v", b.P50MS, b.P90MS, b.P99MS, b.MaxMS)
	}
	if len(rep.PerShard) != rep.Replicas {
		fail("per_shard has %d entries for %d replicas", len(rep.PerShard), rep.Replicas)
	}
	var fills, oks, puts int64
	for i, sh := range rep.PerShard {
		if sh.URL == "" {
			fail("shard %d has no URL", i)
		}
		if sh.Requests <= 0 {
			fail("shard %d (%s) answered no requests — the burst did not split", i, sh.URL)
		}
		if sh.PeerOK > sh.PeerFills {
			fail("shard %d adopted more fills than it attempted (%d > %d)", i, sh.PeerOK, sh.PeerFills)
		}
		fills += sh.PeerFills
		oks += sh.PeerOK
		puts += sh.StorePuts
	}
	if fills != rep.PeerFillsTotal || oks != rep.PeerOKTotal {
		fail("peer totals disagree with per-shard sums (%d/%d vs %d/%d)",
			rep.PeerFillsTotal, rep.PeerOKTotal, fills, oks)
	}
	if oks == 0 {
		fail("no peer fill was adopted anywhere in the ring")
	}
	if puts == 0 {
		fail("no verdict was ever written through to a store")
	}
	r := rep.Restart
	if r.Replica < 0 || r.Replica >= rep.Replicas {
		fail("restart.replica = %d out of range", r.Replica)
	}
	if r.RecoveredRecords <= 0 {
		fail("restart recovered no records")
	}
	if r.RepeatedKeys <= 0 {
		fail("restart phase repeated no keys")
	}
	if r.StoreHits != r.RepeatedKeys {
		fail("restart served %d of %d repeats from the store", r.StoreHits, r.RepeatedKeys)
	}
	if r.Recomputes != 0 {
		fail("restart re-ran %d engines", r.Recomputes)
	}
	fmt.Printf("checkserve: %s ok (%d replicas, %d burst requests, hit_rate=%.2f, peer_ok=%d, restart %d/%d from store)\n",
		path, rep.Replicas, b.Requests, b.HitRate, rep.PeerOKTotal, r.StoreHits, r.RepeatedKeys)
}

// Machine-readable benchmark emission: `tdbench -benchjson FILE` measures
// the F1–F3 experiments plus the chase implication/decision workloads with
// testing.Benchmark and writes one JSON document, so the performance
// trajectory of the engine is tracked in-repo from PR to PR. The chase
// workloads are measured under both join strategies — JoinIndex is the
// production path, JoinScan the pre-index baseline kept for ablation — so
// every snapshot carries its own before/after comparison.
package main

import (
	"fmt"
	"os"
	"runtime"
	"testing"

	"templatedep/internal/budget"
	"templatedep/internal/chase"
	"templatedep/internal/diagram"
	"templatedep/internal/obs"
	"templatedep/internal/reduction"
	"templatedep/internal/relation"
	"templatedep/internal/td"
	"templatedep/internal/words"
)

type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// TuplesPerSec is the canonical-database tuple throughput of chase
	// workloads (tuples in the final instance per second of chase time);
	// zero for workloads that do not run the chase.
	TuplesPerSec float64 `json:"tuples_per_sec,omitempty"`
	// Verdict is the chase verdict of the workload (chase workloads only).
	// -checkbench requires the index and scan arms of each workload to
	// agree on it: a join-strategy ablation must never flip an answer.
	Verdict string `json:"verdict,omitempty"`
	// Counters is the observability counter snapshot of one un-timed run of
	// the workload (-metrics; chase workloads only). The timed loop always
	// runs sink-free, so counters never perturb ns_per_op.
	Counters map[string]int64 `json:"counters,omitempty"`
	// Workers is the chase Workers option of the arm (chase workloads only).
	// The /parallel arm records runtime.GOMAXPROCS(0) at generation time; on
	// a single-CPU host that is 1 and the arm measures the serial path.
	Workers int `json:"workers,omitempty"`
	// WarmNsPerOp and WarmVerdict measure a warm-start repeat of the same
	// workload: one cold run captures a chase-state snapshot, then the timed
	// loop re-runs Implies seeded with that snapshot (fresh governor per
	// iteration, like the cold loop). The replay skips straight to the goal
	// probe, so warm_ns_per_op is the incremental-path latency the serve
	// layer gets on a state-cache hit.
	WarmNsPerOp float64 `json:"warm_ns_per_op,omitempty"`
	WarmVerdict string  `json:"warm_verdict,omitempty"`
}

type benchReport struct {
	reportHost
	// Maxprocs records runtime.GOMAXPROCS(0) on the generating host: the
	// workers sweep below is 1 vs this value, so a report from a 1-CPU box
	// documents that its /parallel arm could not exercise real parallelism.
	Maxprocs int           `json:"gomaxprocs"`
	Results  []benchResult `json:"results"`
}

func writeBenchJSON(path string, metrics bool) {
	fail := reportFail("bench")
	reportProbe(path, fail)

	rep := benchReport{
		reportHost: newReportHost(),
		Maxprocs:   runtime.GOMAXPROCS(0),
	}

	// record returns a pointer to the appended result so chase workloads can
	// annotate it (workers, warm columns) before the next record call — the
	// pointer is invalidated by the following append.
	record := func(name string, tuples int, verdict string, counters map[string]int64, fn func(b *testing.B)) *benchResult {
		r := testing.Benchmark(fn)
		br := benchResult{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Verdict:     verdict,
			Counters:    counters,
		}
		if tuples > 0 && br.NsPerOp > 0 {
			br.TuplesPerSec = float64(tuples) * 1e9 / br.NsPerOp
		}
		rep.Results = append(rep.Results, br)
		fmt.Printf("%-34s %14.0f ns/op %8d allocs/op\n", name, br.NsPerOp, br.AllocsPerOp)
		return &rep.Results[len(rep.Results)-1]
	}

	// chaseCounters runs the workload once with a counter sink and returns
	// the snapshot (nil unless -metrics). The benchmarked options never
	// carry the sink.
	chaseCounters := func(deps []*td.TD, goal *td.TD, opt chase.Options) map[string]int64 {
		if !metrics {
			return nil
		}
		ctrs := obs.NewCounters()
		opt.Sink = obs.NewCounterSink(ctrs)
		if _, err := chase.Implies(deps, goal, opt); err != nil {
			check(err)
		}
		return ctrs.Snapshot()
	}

	// F1: diagram round trip.
	record("f1/roundtrip", 0, "", nil, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g, d := diagram.Fig1()
			back, err := g.TD("roundtrip")
			check(err)
			if back.Format() != d.Format() {
				b.Fatal("round trip mismatch")
			}
		}
	})

	// F2: bridge construction for growing word lengths.
	twostep := reduction.MustBuild(words.TwoStepPresentation())
	bSym := twostep.Pres.Alphabet.MustSymbol("b")
	for _, k := range []int{1, 4, 16, 64} {
		w := make(words.Word, k)
		for i := range w {
			w[i] = bSym
		}
		record(fmt.Sprintf("f2/bridge_len%d", k), 0, "", nil, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := twostep.BuildBridge(w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// F3: full reduction construction per presentation.
	for _, tc := range []struct {
		name string
		p    *words.Presentation
	}{
		{"power", words.PowerPresentation()},
		{"chain4", words.ChainPresentation(4)},
		{"nilpotent4", words.NilpotentSafePresentation(4)},
	} {
		record("f3/build_"+tc.name, 0, "", nil, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				reduction.MustBuild(tc.p)
			}
		})
	}

	// Chase implication on the reduction output: both join strategies at one
	// worker, plus a /parallel arm (JoinIndex at GOMAXPROCS workers) and a
	// warm-start repeat column on the index-join arms. Every iteration gets
	// a FRESH governor: budget meters accumulate across runs, so a shared
	// governor exhausts after the first few iterations and the loop would
	// measure setup-cost no-ops, not chases.
	for _, tc := range []struct {
		name string
		p    *words.Presentation
	}{
		{"chain1", words.ChainPresentation(1)},
		{"chain2", words.ChainPresentation(2)},
		{"chain3", words.ChainPresentation(3)},
	} {
		in := reduction.MustBuild(tc.p)
		arms := []struct {
			arm     string
			join    chase.JoinStrategy
			workers int
			warm    bool
		}{
			{chase.JoinIndex.String(), chase.JoinIndex, 1, true},
			{chase.JoinScan.String(), chase.JoinScan, 1, false},
			{"parallel", chase.JoinIndex, runtime.GOMAXPROCS(0), true},
		}
		for _, a := range arms {
			a := a
			mkOpt := func() chase.Options {
				return chase.Options{
					Governor:  budget.New(nil, budget.Limits{Rounds: 32, Tuples: 200000}),
					SemiNaive: true, Join: a.join, Workers: a.workers,
				}
			}
			res, err := chase.Implies(in.D, in.D0, mkOpt())
			check(err)
			tuples := res.Instance.Len()
			br := record(fmt.Sprintf("chase/implies_%s/%s", tc.name, a.arm), tuples,
				res.Verdict.String(), chaseCounters(in.D, in.D0, mkOpt()), func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, err := chase.Implies(in.D, in.D0, mkOpt()); err != nil {
							b.Fatal(err)
						}
					}
				})
			br.Workers = a.workers
			if !a.warm {
				continue
			}
			capOpt := mkOpt()
			capOpt.CaptureState = true
			prod, err := chase.Implies(in.D, in.D0, capOpt)
			check(err)
			if prod.State == nil {
				fmt.Fprintf(os.Stderr, "tdbench: %s: no chase state captured\n", br.Name)
				os.Exit(1)
			}
			warmOpt := func() chase.Options {
				o := mkOpt()
				o.WarmState = prod.State
				return o
			}
			wres, err := chase.Implies(in.D, in.D0, warmOpt())
			check(err)
			if !wres.WarmStarted || wres.Verdict != res.Verdict {
				fmt.Fprintf(os.Stderr, "tdbench: %s: warm repeat diverged (warm-started %v, verdict %s vs %s)\n",
					br.Name, wres.WarmStarted, wres.Verdict, res.Verdict)
				os.Exit(1)
			}
			w := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := chase.Implies(in.D, in.D0, warmOpt()); err != nil {
						b.Fatal(err)
					}
				}
			})
			br.WarmNsPerOp = float64(w.T.Nanoseconds()) / float64(w.N)
			br.WarmVerdict = wres.Verdict.String()
			fmt.Printf("%-34s %14.0f ns/op (warm repeat)\n", br.Name, br.WarmNsPerOp)
		}
	}

	// Full-TD decision (E6 shape): terminating chase on full dependencies.
	s := relation.MustSchema("A", "B", "C")
	joinDep := td.MustParse(s, "R(a, b, c) & R(a, b', c') -> R(a, b, c')", "join")
	goal := td.MustParse(s, "R(a, b0, c0) & R(a, b1, c1) & R(a, b2, c2) -> R(a, b0, c2)", "goal")
	for _, js := range []chase.JoinStrategy{chase.JoinIndex, chase.JoinScan} {
		opt := chase.DefaultOptions()
		opt.Join = js
		res, err := chase.Implies([]*td.TD{joinDep}, goal, opt)
		check(err)
		tuples := res.Instance.Len()
		record(fmt.Sprintf("chase/decide_full/%s", js), tuples, res.Verdict.String(), chaseCounters([]*td.TD{joinDep}, goal, opt), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := chase.Implies([]*td.TD{joinDep}, goal, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	reportWrite(path, rep, fail)
	fmt.Printf("\nwrote %d results to %s\n", len(rep.Results), path)
}

// benchExpectedPlain lists the non-chase workloads writeBenchJSON emits;
// benchExpectedChase lists the chase workloads, each present once per join
// strategy. -checkbench validates against these, so renaming a workload in
// the generator without updating the committed report (or vice versa) is a
// CI failure, not a silent drift.
var benchExpectedPlain = []string{
	"f1/roundtrip",
	"f2/bridge_len1", "f2/bridge_len4", "f2/bridge_len16", "f2/bridge_len64",
	"f3/build_power", "f3/build_chain4", "f3/build_nilpotent4",
}

var benchExpectedChase = []string{
	"chase/implies_chain1", "chase/implies_chain2", "chase/implies_chain3",
	"chase/decide_full",
}

// benchExpectedSweep lists the chase workloads that additionally carry the
// workers sweep (a /parallel arm at GOMAXPROCS workers) and warm-start
// repeat columns on their index-join arms.
var benchExpectedSweep = []string{
	"chase/implies_chain1", "chase/implies_chain2", "chase/implies_chain3",
}

// checkBenchJSON validates a BENCH_chase.json structurally, mirroring
// -checksearch: the report must parse, every expected workload must be
// present (chase workloads under BOTH join strategies, implication
// workloads also under the /parallel arm), measurements must be positive,
// and all arms of each chase workload must report the same verdict — the
// soundness requirement of the join ablation and of the parallel round
// decomposition. Warm columns must be present on the implication index
// arms, agree with the cold verdict, and at least one workload must show
// the warm repeat at less than half the cold latency — the point of
// keeping chase states at all.
func checkBenchJSON(path string) {
	fail := reportFail(path)
	var rep benchReport
	reportRead(path, &rep, false, fail)
	byName := make(map[string]benchResult, len(rep.Results))
	for _, r := range rep.Results {
		if r.NsPerOp <= 0 {
			fail("workload %s: non-positive ns_per_op", r.Name)
		}
		byName[r.Name] = r
	}
	for _, name := range benchExpectedPlain {
		if _, ok := byName[name]; !ok {
			fail("missing workload %s", name)
		}
	}
	for _, base := range benchExpectedChase {
		idx, okIdx := byName[base+"/index"]
		scn, okScn := byName[base+"/scan"]
		if !okIdx || !okScn {
			fail("workload %s missing a join arm (index present: %v, scan present: %v)", base, okIdx, okScn)
		}
		if idx.Verdict == "" || scn.Verdict == "" {
			fail("workload %s: missing verdict (regenerate with a current tdbench)", base)
		}
		if idx.Verdict != scn.Verdict {
			fail("workload %s: join strategies disagree (index=%s scan=%s)", base, idx.Verdict, scn.Verdict)
		}
	}
	bestWarm := 0.0
	for _, base := range benchExpectedSweep {
		idx := byName[base+"/index"]
		par, ok := byName[base+"/parallel"]
		if !ok {
			fail("workload %s: missing /parallel arm", base)
		}
		if par.Workers < 1 {
			fail("workload %s/parallel: workers not recorded", base)
		}
		if par.Verdict != idx.Verdict {
			fail("workload %s: parallel arm flips the verdict (parallel=%s index=%s)", base, par.Verdict, idx.Verdict)
		}
		for _, arm := range []benchResult{idx, par} {
			if arm.WarmNsPerOp <= 0 {
				fail("workload %s: missing warm repeat column", arm.Name)
			}
			if arm.WarmVerdict != arm.Verdict {
				fail("workload %s: warm repeat flips the verdict (warm=%s cold=%s)", arm.Name, arm.WarmVerdict, arm.Verdict)
			}
			if r := arm.NsPerOp / arm.WarmNsPerOp; r > bestWarm {
				bestWarm = r
			}
		}
	}
	if bestWarm < 2 {
		fail("no workload shows a >=2x warm-start speedup (best %.2fx)", bestWarm)
	}
	fmt.Printf("%s: %d results, all %d+%d workloads present, arm verdicts identical, best warm speedup %.0fx\n",
		path, len(rep.Results), len(benchExpectedPlain), len(benchExpectedChase), bestWarm)
}

// Differential fuzzing gate: `tdbench -fuzzjson FILE` generates a seeded
// scenario corpus (internal/corpus — TM-derived hard instances, random
// presentations and TD instances, and the decidable oracle fragment with
// independent ground truth), runs every instance through all applicable
// engines under matched governors (internal/difffuzz), and writes one JSON
// document with the corpus composition, per-family verdict counts and
// timings, and every violated invariant. The run itself exits nonzero when
// any invariant fails — after writing the report, so CI can upload it as
// an artifact.
//
// `tdbench -checkfuzz FILE` validates a previously written report: it must
// parse strictly, carry all three corpus families, sum its per-family
// counts to the instance total, report ZERO disagreements and zero oracle
// mismatches, and show every definitive consensus verdict certified. This
// is the continuous differential gate ci.sh and the nightly workflow run:
// the soundness claims of DESIGN.md hold not just on the curated test
// presets but on a fresh adversarial corpus every push.
package main

import (
	"fmt"
	"os"
	"runtime"
	"sort"

	"templatedep/internal/corpus"
	"templatedep/internal/difffuzz"
	"templatedep/internal/obs"
)

// fuzzFamily aggregates one corpus family's differential outcomes.
type fuzzFamily struct {
	Family string `json:"family"`
	Cases  int    `json:"cases"`
	// Verdict distribution of the cross-engine consensus.
	Implied              int `json:"implied"`
	FiniteCounterexample int `json:"finite_counterexample"`
	Unknown              int `json:"unknown"`
	// Oracle ground-truth distribution (oracle family only) and the count
	// of definitive engine verdicts that contradicted it (gate: zero).
	OracleImplied    int `json:"oracle_implied,omitempty"`
	OracleNotImplied int `json:"oracle_not_implied,omitempty"`
	OracleMismatches int `json:"oracle_mismatches"`
	// NsPerCase is total engine wall time over cases — a throughput
	// number, not a benchmark (cases run concurrently under -fuzzjson).
	NsPerCase float64 `json:"ns_per_case"`
}

type fuzzReport struct {
	reportHost
	// Quick marks the ~100-instance CI-smoke corpus; the nightly and
	// committed reports use the full default.
	Quick   bool  `json:"quick"`
	Seed    int64 `json:"seed"`
	Workers int   `json:"workers"`
	// Corpus composition by family, in corpus generation order.
	Instances int          `json:"instances"`
	Families  []fuzzFamily `json:"families"`
	// Engines is the union of engine names that ran (TD instances and
	// presentation instances have different engine sets).
	Engines []string `json:"engines"`
	// Definitive counts cases with a definitive consensus; Certified of
	// them shipped a certificate that passed cert.Check (gate: all).
	Definitive int `json:"definitive"`
	Certified  int `json:"certified"`
	// DisagreementCount must be zero; Disagreements lists the violations
	// verbatim when it is not, so a red report is self-diagnosing.
	DisagreementCount int      `json:"disagreement_count"`
	Disagreements     []string `json:"disagreements,omitempty"`
	// Counters is the difffuzz observability counter snapshot
	// (fuzz.cases, fuzz.family.<family>.cases, fuzz.disagreements).
	Counters map[string]int64 `json:"counters"`
}

// fuzzComposition splits a total corpus size across the families: roughly
// a fifth TM-derived instances (the expensive ones), the rest split evenly
// between random and oracle. n <= 0 takes the defaults (100 quick / 240
// full).
func fuzzComposition(n int, quick bool) (tm, random, oracle int) {
	if n <= 0 {
		if quick {
			n = 100
		} else {
			n = 240
		}
	}
	tm = n / 5
	random = (n - tm) / 2
	oracle = n - tm - random
	return tm, random, oracle
}

func writeFuzzJSON(path string, quick bool, n int, seed int64) {
	fail := reportFail("fuzz")
	reportProbe(path, fail)

	tmN, randomN, oracleN := fuzzComposition(n, quick)
	insts, err := corpus.Generate(corpus.Options{Seed: seed, TM: tmN, Random: randomN, Oracle: oracleN})
	if err != nil {
		fail("corpus: %v", err)
	}
	counters := obs.NewCounters()
	res, err := difffuzz.Run(insts, difffuzz.Options{
		Seed:    seed,
		Workers: runtime.GOMAXPROCS(0),
		Sink:    obs.NewCounterSink(counters),
	})
	if err != nil {
		fail("%v", err)
	}

	rep := fuzzReport{
		reportHost:        newReportHost(),
		Quick:             quick,
		Seed:              seed,
		Workers:           runtime.GOMAXPROCS(0),
		Instances:         len(res.Cases),
		Disagreements:     res.Disagreements,
		DisagreementCount: len(res.Disagreements),
		Counters:          counters.Snapshot(),
	}
	byFamily := map[string]*fuzzFamily{}
	var familyOrder []string
	engines := map[string]bool{}
	for _, c := range res.Cases {
		f, ok := byFamily[c.Family]
		if !ok {
			f = &fuzzFamily{Family: c.Family}
			byFamily[c.Family] = f
			familyOrder = append(familyOrder, c.Family)
		}
		f.Cases++
		switch c.Verdict {
		case "implied":
			f.Implied++
			rep.Definitive++
		case "finite-counterexample":
			f.FiniteCounterexample++
			rep.Definitive++
		default:
			f.Unknown++
		}
		switch c.Oracle {
		case "implied":
			f.OracleImplied++
		case "not-implied":
			f.OracleNotImplied++
		}
		certified := false
		for _, e := range c.Engines {
			engines[e.Engine] = true
			certified = certified || e.Certified
		}
		if certified {
			rep.Certified++
		}
		f.NsPerCase += float64(c.NS)
		for _, p := range c.Problems {
			if len(p) >= 7 && p[:7] == "oracle:" {
				f.OracleMismatches++
			}
		}
	}
	for _, name := range familyOrder {
		f := byFamily[name]
		if f.Cases > 0 {
			f.NsPerCase /= float64(f.Cases)
		}
		rep.Families = append(rep.Families, *f)
		fmt.Printf("%-8s %4d cases: %3d implied, %3d finite-counterexample, %3d unknown  %12.0f ns/case\n",
			f.Family, f.Cases, f.Implied, f.FiniteCounterexample, f.Unknown, f.NsPerCase)
	}
	for e := range engines {
		rep.Engines = append(rep.Engines, e)
	}
	sort.Strings(rep.Engines)

	reportWrite(path, rep, fail)
	fmt.Printf("fuzz: %d instances (seed %d): %d definitive, %d certified, %d disagreements\n",
		rep.Instances, rep.Seed, rep.Definitive, rep.Certified, rep.DisagreementCount)
	fmt.Printf("wrote %s\n", path)
	if rep.DisagreementCount > 0 {
		for _, d := range rep.Disagreements {
			fmt.Fprintf(os.Stderr, "tdbench: fuzz: DISAGREE %s\n", d)
		}
		fail("%d invariant violations (report written for triage)", rep.DisagreementCount)
	}
}

// checkFuzzJSON validates a -fuzzjson report: the continuous differential
// gate. Structure (all families present, counts consistent) and the
// soundness acceptance criteria (zero disagreements, zero oracle
// mismatches, every definitive consensus certified) are both enforced, on
// fresh and committed reports alike — a quick report differs only in
// corpus size.
func checkFuzzJSON(path string) {
	fail := reportFail("checkfuzz: " + path)
	var rep fuzzReport
	reportRead(path, &rep, true, fail)

	if rep.Instances <= 0 {
		fail("no instances")
	}
	if rep.Seed == 0 {
		fail("seed not recorded")
	}
	byFamily := map[string]fuzzFamily{}
	total := 0
	for _, f := range rep.Families {
		byFamily[f.Family] = f
		total += f.Cases
		if f.Cases <= 0 {
			fail("family %s carries no cases", f.Family)
		}
		if f.Implied+f.FiniteCounterexample+f.Unknown != f.Cases {
			fail("family %s: verdict counts sum to %d of %d cases",
				f.Family, f.Implied+f.FiniteCounterexample+f.Unknown, f.Cases)
		}
		if f.NsPerCase <= 0 {
			fail("family %s: no time recorded", f.Family)
		}
		if f.OracleMismatches != 0 {
			fail("family %s: %d definitive verdicts contradict the fragment oracle", f.Family, f.OracleMismatches)
		}
	}
	if total != rep.Instances {
		fail("family cases sum to %d of %d instances", total, rep.Instances)
	}
	for _, fam := range []string{"tm", "random", "oracle"} {
		if _, ok := byFamily[fam]; !ok {
			fail("missing corpus family %q", fam)
		}
	}
	orc := byFamily["oracle"]
	if orc.OracleImplied+orc.OracleNotImplied != orc.Cases {
		fail("oracle family: ground-truth counts sum to %d of %d cases",
			orc.OracleImplied+orc.OracleNotImplied, orc.Cases)
	}
	if orc.Unknown != 0 {
		fail("oracle family: %d cases stayed unknown — the decidable fragment must settle", orc.Unknown)
	}
	if rep.DisagreementCount != 0 || len(rep.Disagreements) != 0 {
		for _, d := range rep.Disagreements {
			fmt.Fprintf(os.Stderr, "tdbench: checkfuzz: DISAGREE %s\n", d)
		}
		fail("%d cross-engine invariant violations", rep.DisagreementCount)
	}
	if rep.Definitive <= 0 {
		fail("no case reached a definitive consensus")
	}
	if rep.Certified != rep.Definitive {
		fail("%d of %d definitive consensus verdicts shipped a checked certificate",
			rep.Certified, rep.Definitive)
	}
	if len(rep.Engines) == 0 {
		fail("no engines recorded")
	}
	if got := rep.Counters["fuzz.cases"]; got != int64(rep.Instances) {
		fail("counter fuzz.cases = %d, want %d", got, rep.Instances)
	}
	if got := rep.Counters["fuzz.disagreements"]; got != 0 {
		fail("counter fuzz.disagreements = %d, want 0", got)
	}
	fmt.Printf("checkfuzz: %s ok (%d instances across %d families, %d definitive, all certified, 0 disagreements)\n",
		path, rep.Instances, len(rep.Families), rep.Definitive)
}

// Command tdreduce runs the Gurevich–Lewis reduction: it reads a semigroup
// presentation (a word-problem instance of the Main Lemma) and emits the
// template-dependency inference instance (D, D0) of the Reduction Theorem.
//
// Input is either a spec file (-spec, see words.ParseSpec) or a named
// preset (-preset power|twostep|chain:N|gap|nilpotent:M). Output is the
// dependency set in textual TD syntax; -dot renders each dependency's
// diagram in Graphviz format instead, and -bridge W prints the bridge
// tableau of the word W (Fig. 2).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"templatedep/internal/diagram"
	"templatedep/internal/reduction"
	"templatedep/internal/words"
)

func main() {
	var (
		specFile = flag.String("spec", "", "presentation spec file")
		preset   = flag.String("preset", "", "preset presentation: power|twostep|chain:N|gap|nilpotent:M")
		dot      = flag.Bool("dot", false, "emit Graphviz diagrams instead of TD text")
		bridge   = flag.String("bridge", "", "also print the bridge tableau for this word (Fig. 2)")
		emitDir  = flag.String("emit-dir", "", "write deps.td, goal.td, and schema.txt into this directory, in the format tdinfer consumes")
	)
	flag.Parse()

	p, err := loadPresentation(*specFile, *preset)
	if err != nil {
		fatal(err)
	}
	in, err := reduction.Build(p)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("# presentation (%d equations over %s)\n", len(in.Pres.Equations), in.Pres.Alphabet)
	fmt.Print(words.FormatSpec(in.Pres, true))
	fmt.Printf("\n# schema: %d attributes (2n+2 for n = %d symbols)\n", in.Schema.Width(), in.Pres.Alphabet.Size())
	fmt.Printf("# %s\n", in.Schema)
	fmt.Printf("# |D| = %d dependencies, max antecedents = %d\n\n", len(in.D), in.MaxAntecedents())

	if *dot {
		for _, d := range append(in.D, in.D0) {
			fmt.Print(diagram.FromTD(d).DOT(d.Name()))
		}
	} else {
		for _, d := range in.D {
			fmt.Printf("%s: %s\n", d.Name(), d.Format())
		}
		fmt.Printf("\nD0: %s\n", in.D0.Format())
	}

	if *emitDir != "" {
		if err := emitFiles(*emitDir, in); err != nil {
			fatal(err)
		}
		fmt.Printf("\n# wrote %s/{schema.txt, deps.td, goal.td}\n", *emitDir)
	}

	if *bridge != "" {
		w, err := words.ParseWord(in.Pres.Alphabet, *bridge)
		if err != nil {
			fatal(err)
		}
		br, err := in.BuildBridge(w)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\n# bridge for %s (%d base + %d apex nodes)\n", w.Format(in.Pres.Alphabet),
			len(br.BaseNodes), len(br.ApexNodes))
		fmt.Print(br.Tableau.String())
	}
}

func loadPresentation(specFile, preset string) (*words.Presentation, error) {
	switch {
	case specFile != "" && preset != "":
		return nil, fmt.Errorf("use either -spec or -preset, not both")
	case specFile != "":
		data, err := os.ReadFile(specFile)
		if err != nil {
			return nil, err
		}
		return words.ParseSpec(string(data))
	case preset != "":
		return words.Preset(preset)
	default:
		return nil, fmt.Errorf("one of -spec or -preset is required")
	}
}

// emitFiles writes the instance in the three-file layout tdinfer consumes:
// schema.txt (comma-separated attribute names), deps.td (one TD per line
// with sanitized names), and goal.td (D0's body).
func emitFiles(dir string, in *reduction.Instance) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	schema := strings.Join(in.Schema.Names(), ",")
	if err := os.WriteFile(dir+"/schema.txt", []byte(schema+"\n"), 0o644); err != nil {
		return err
	}
	var deps strings.Builder
	for i, d := range in.D {
		// ParseSet treats text before the first ':' as the name; keep it
		// free of the brackets and spaces the display names use.
		fmt.Fprintf(&deps, "D%d_%d: %s\n", i%4+1, i/4, d.Format())
	}
	if err := os.WriteFile(dir+"/deps.td", []byte(deps.String()), 0o644); err != nil {
		return err
	}
	return os.WriteFile(dir+"/goal.td", []byte(in.D0.Format()+"\n"), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tdreduce:", err)
	os.Exit(1)
}

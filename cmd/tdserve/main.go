// Command tdserve is the long-running inference service: an HTTP/JSON
// front-end over the dual semidecision engines that amortizes work across
// requests with a canonical verdict cache and in-flight deduplication.
//
//	tdserve -addr :8080 -trace trace.jsonl
//
// Endpoints:
//
//	POST /infer    {"preset":"power"}
//	               {"alphabet":[...],"a0":"A0","zero":"0","equations":[...]}
//	               {"schema":[...],"deps":[...],"goal":"R(...) -> R(...)"}
//	GET  /healthz  {"status":"ok"|"draining"}
//	GET  /metrics  {"gauges":{...},"counters":{...}}
//
// Each request is canonicalized up to symbol renaming and equation order
// before lookup, so renamed repeats of a problem share one cache line and
// one engine run. TD requests additionally share chase computations: goals
// over the same dependency set and antecedent tableau warm-start from a
// cached chase state instead of chasing from round 1. Responses carry a
// "source" field ("cold", "warm", "cache", "dedup", "store", "peer") and
// the request trace ID, which stamps every JSONL event the request caused.
//
// -store FILE persists every answered verdict in an append-log; a
// restarted replica replays it on boot and answers previously-settled keys
// from disk (source "store") without re-running an engine. -peers/-self
// shard the canonical key-space across replicas by consistent hashing: a
// local miss on a key another replica owns is forwarded there, and the
// answer adopted only after its certificate passes the local verifier —
// a down or lying peer degrades to a local compute, never to a wrong or
// unproven verdict.
//
// SIGINT/SIGTERM drains gracefully: new requests get 503, in-flight runs
// finish (or are cancelled at their next governor checkpoint once
// -drain-timeout expires, closing their traces), then the server emits the
// final serve_shutdown event and exits 0.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"templatedep/internal/budget"
	"templatedep/internal/obs"
	"templatedep/internal/serve"
	"templatedep/internal/store"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address (host:port; :0 picks a free port)")
		cacheSize    = flag.Int("cache", 1024, "verdict cache entries")
		maxInflight  = flag.Int("max-inflight", 0, "max concurrent engine runs (0 = unlimited)")
		reqTimeout   = flag.Duration("request-timeout", 10*time.Second, "wall-clock budget per cold request (0 = meters only)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight runs before cancelling them")
		workers      = flag.Int("workers", runtime.GOMAXPROCS(0), "engine worker goroutines per cold run (results are identical for every value; 1 = serial)")
		stateCache   = flag.Int("state-cache", 0, "chase-state cache entries (0 = default 64, negative disables warm starts)")
		rounds       = flag.Int("rounds", 0, "per-request chase round budget (0 = engine default)")
		tuples       = flag.Int("tuples", 0, "per-request chase tuple budget (0 = engine default)")
		nodes        = flag.Int("nodes", 0, "per-request search node budget (0 = engine default)")
		wordsCap     = flag.Int("words", 0, "per-request closure word budget (0 = engine default)")
		engine       = flag.String("engine", "portfolio", "inference engine per cold run: portfolio (adaptive reallocation) or race (static budgets)")
		traceFile    = flag.String("trace", "", "write the structured event stream to FILE as JSONL (see docs/OBSERVABILITY.md)")
		storePath    = flag.String("store", "", "disk-backed verdict store FILE (append-log; created if absent, replayed on start)")
		peers        = flag.String("peers", "", "comma-separated base URLs of every ring replica, this one included (enables consistent-hash peer fill)")
		self         = flag.String("self", "", "this replica's base URL exactly as listed in -peers")
		peerTimeout  = flag.Duration("peer-timeout", 2*time.Second, "wall-clock bound per peer-fill round trip")
	)
	flag.Parse()
	if *engine != "portfolio" && *engine != "race" {
		fatal(fmt.Errorf("unknown -engine %q (want portfolio or race)", *engine))
	}
	var peerList []string
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
		if *self == "" {
			fatal(fmt.Errorf("-peers requires -self (this replica's URL as listed)"))
		}
		found := false
		for _, p := range peerList {
			found = found || p == *self
		}
		if !found {
			fatal(fmt.Errorf("-self %q is not in -peers", *self))
		}
	}

	counters := obs.NewCounters()
	cfg := serve.Config{
		Limits:         budget.Limits{Rounds: *rounds, Tuples: *tuples, Nodes: *nodes, Words: *wordsCap},
		RequestTimeout: *reqTimeout,
		MaxInflight:    *maxInflight,
		CacheSize:      *cacheSize,
		StateCacheSize: *stateCache,
		Workers:        *workers,
		Counters:       counters,
		Engine:         *engine,
		Peers:          peerList,
		Self:           *self,
		PeerTimeout:    *peerTimeout,
	}
	var flushTrace func()
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fatal(err)
		}
		w := bufio.NewWriter(f)
		jl := obs.NewJSONLSink(w)
		cfg.Sink = jl
		flushTrace = func() {
			if err := jl.Err(); err != nil {
				fatal(err)
			}
			if err := w.Flush(); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}
	}

	var vstore *store.Store
	if *storePath != "" {
		var err error
		// The store shares the trace sink so its recover/put/compact events
		// land in the same stream (and counters) as the serving layer's.
		vstore, err = store.Open(*storePath, store.Options{
			Sink: obs.Multi(cfg.Sink, obs.NewCounterSink(counters)),
		})
		if err != nil {
			fatal(err)
		}
		cfg.Store = vstore
		fmt.Printf("tdserve: store %s (%d verdicts recovered)\n", *storePath, vstore.Len())
	}

	s := serve.New(cfg)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	// The actual address on its own line, so scripts binding :0 can parse
	// the port before the first request.
	fmt.Printf("tdserve: listening on %s\n", ln.Addr())

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Printf("tdserve: %s — draining (%d engine runs in flight)\n", sig, s.BeginDrain())
	case err := <-errCh:
		fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop accepting and wait for handlers first (followers included),
	// then drain the engine WaitGroup and emit serve_shutdown — the
	// trace's final line on a graceful exit.
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fatal(err)
	}
	if err := s.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fatal(err)
	}
	if vstore != nil {
		if err := vstore.Close(); err != nil {
			fatal(err)
		}
	}
	if flushTrace != nil {
		flushTrace()
	}
	fmt.Printf("tdserve: drained. requests=%d cold=%d warm=%d cache_hits=%d dedups=%d store_hits=%d peer_fills=%d\n",
		counters.Get("serve.requests"),
		counters.Get("serve.cache_misses")-counters.Get("serve.warm"),
		counters.Get("serve.warm"),
		counters.Get("serve.cache_hits"), counters.Get("serve.dedups"),
		counters.Get("serve.store_hits"), counters.Get("serve.peer_fills"))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tdserve:", err)
	os.Exit(1)
}

// Command tdinfer runs the dual semidecision procedure for template
// dependency inference: given a set D of TDs and a goal TD D0 over a shared
// schema, it chases D0's frozen antecedents under D (semideciding "D
// implies D0") and, if the chase is inconclusive, enumerates small finite
// databases looking for a counterexample (semideciding "D0 fails finitely").
//
// Example:
//
//	tdinfer -schema SUPPLIER,STYLE,SIZE \
//	        -dep "R(a,b,c) & R(a,b',c') -> R(a*,b,c')" \
//	        -goal "R(a,b,c) & R(a,b',c') -> R(a*,b,c')"
//
// Dependencies may also be read one per line from a file via -deps.
//
// Observability: -trace FILE writes the structured event stream (JSONL, see
// docs/OBSERVABILITY.md) of the whole run; -progress keeps a live one-line
// status on stderr; -depstats prints a per-dependency work table; -proof
// prints the chase proof trace when the verdict is "implied".
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"templatedep/internal/chase"
	"templatedep/internal/core"
	"templatedep/internal/finitemodel"
	"templatedep/internal/obs"
	"templatedep/internal/relation"
	"templatedep/internal/td"
)

type depFlags []string

func (d *depFlags) String() string     { return strings.Join(*d, "; ") }
func (d *depFlags) Set(s string) error { *d = append(*d, s); return nil }

func main() {
	var (
		schemaFlag = flag.String("schema", "", "comma-separated attribute names (required)")
		depsFile   = flag.String("deps", "", "file with one TD per line (optional)")
		goalFlag   = flag.String("goal", "", "goal TD D0 (required)")
		rounds     = flag.Int("rounds", 64, "chase round budget")
		tuples     = flag.Int("tuples", 100000, "chase tuple budget")
		fmTuples   = flag.Int("cx-tuples", 4, "counterexample enumeration: max tuples")
		proof      = flag.Bool("proof", false, "print the chase proof trace")
		traceFile  = flag.String("trace", "", "write the structured event stream to FILE as JSONL (see docs/OBSERVABILITY.md)")
		progress   = flag.Bool("progress", false, "live progress line on stderr")
		depStats   = flag.Bool("depstats", false, "print per-dependency chase statistics")
		deps       depFlags
	)
	flag.Var(&deps, "dep", "a TD (repeatable)")
	flag.Parse()

	if *schemaFlag == "" || *goalFlag == "" {
		fmt.Fprintln(os.Stderr, "tdinfer: -schema and -goal are required")
		flag.Usage()
		os.Exit(2)
	}
	schema, err := relation.NewSchema(strings.Split(*schemaFlag, ","))
	if err != nil {
		fatal(err)
	}
	var depSet []*td.TD
	if *depsFile != "" {
		data, err := os.ReadFile(*depsFile)
		if err != nil {
			fatal(err)
		}
		ds, err := td.ParseSet(schema, string(data))
		if err != nil {
			fatal(err)
		}
		depSet = append(depSet, ds...)
	}
	for i, s := range deps {
		d, err := td.Parse(schema, s, fmt.Sprintf("dep%d", i+1))
		if err != nil {
			fatal(err)
		}
		depSet = append(depSet, d)
	}
	goal, err := td.Parse(schema, *goalFlag, "D0")
	if err != nil {
		fatal(err)
	}

	budget := core.DefaultBudget()
	budget.Chase = chase.Options{MaxRounds: *rounds, MaxTuples: *tuples, SemiNaive: true,
		Trace: *proof, PerDepStats: *depStats}
	budget.FiniteDB = finitemodel.Options{MaxTuples: *fmTuples}

	var sinks []obs.Sink
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fatal(err)
		}
		w := bufio.NewWriter(f)
		jl := obs.NewJSONLSink(w)
		defer func() {
			if err := jl.Err(); err != nil {
				fatal(err)
			}
			if err := w.Flush(); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		sinks = append(sinks, jl)
	}
	var prog *obs.ProgressSink
	if *progress {
		prog = obs.NewProgressSink(os.Stderr)
		defer prog.Close()
		sinks = append(sinks, prog)
	}
	budget.Sink = obs.Multi(sinks...)

	fmt.Printf("schema: %s\n", schema)
	fmt.Printf("|D| = %d dependencies (all full: %v)\n", len(depSet), chase.AllFull(depSet))
	fmt.Printf("D0:  %s\n\n", goal.Format())

	res, err := core.Infer(depSet, goal, budget)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("verdict: %s\n", res.Verdict)
	if res.Chase != nil {
		st := res.Chase.Stats
		fmt.Printf("chase: %d rounds, %d tuples added, %d triggers fired, fixpoint=%v\n",
			st.Rounds, st.TuplesAdded, st.TriggersFired, res.Chase.FixpointReached)
		if *depStats {
			fmt.Println("per-dependency chase work:")
			for i, ds := range st.PerDep {
				fmt.Printf("  %-12s matched=%-6d fired=%-6d added=%-6d nulls=%d\n",
					depSet[i].Name(), ds.Matched, ds.Fired, ds.Added, ds.Nulls)
			}
		}
		if *proof && res.Verdict == core.Implied {
			fmt.Println("proof trace:")
			for _, f := range res.Chase.Trace {
				fmt.Printf("  round %d: %s adds %v\n", f.Round, depSet[f.Dep].Name(), f.Tuple)
			}
		}
	}
	if res.Counterexample != nil {
		fmt.Printf("finite counterexample (%d tuples):\n%s", res.Counterexample.Len(), res.Counterexample.String())
	}
	if res.Verdict == core.Unknown {
		fmt.Println("inconclusive within budget — raise -rounds / -tuples / -cx-tuples.")
		fmt.Println("(TD inference is undecidable; no budget eliminates this outcome in general.)")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tdinfer:", err)
	os.Exit(1)
}

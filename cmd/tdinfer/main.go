// Command tdinfer runs the dual semidecision procedure for template
// dependency inference: given a set D of TDs and a goal TD D0 over a shared
// schema, it chases D0's frozen antecedents under D (semideciding "D
// implies D0") and, if the chase is inconclusive, enumerates small finite
// databases looking for a counterexample (semideciding "D0 fails finitely").
//
// Example:
//
//	tdinfer -schema SUPPLIER,STYLE,SIZE \
//	        -dep "R(a,b,c) & R(a,b',c') -> R(a*,b,c')" \
//	        -goal "R(a,b,c) & R(a,b',c') -> R(a*,b,c')"
//
// Dependencies may also be read one per line from a file via -deps.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"templatedep/internal/chase"
	"templatedep/internal/core"
	"templatedep/internal/finitemodel"
	"templatedep/internal/relation"
	"templatedep/internal/td"
)

type depFlags []string

func (d *depFlags) String() string     { return strings.Join(*d, "; ") }
func (d *depFlags) Set(s string) error { *d = append(*d, s); return nil }

func main() {
	var (
		schemaFlag = flag.String("schema", "", "comma-separated attribute names (required)")
		depsFile   = flag.String("deps", "", "file with one TD per line (optional)")
		goalFlag   = flag.String("goal", "", "goal TD D0 (required)")
		rounds     = flag.Int("rounds", 64, "chase round budget")
		tuples     = flag.Int("tuples", 100000, "chase tuple budget")
		fmTuples   = flag.Int("cx-tuples", 4, "counterexample enumeration: max tuples")
		trace      = flag.Bool("trace", false, "print the chase proof trace")
		deps       depFlags
	)
	flag.Var(&deps, "dep", "a TD (repeatable)")
	flag.Parse()

	if *schemaFlag == "" || *goalFlag == "" {
		fmt.Fprintln(os.Stderr, "tdinfer: -schema and -goal are required")
		flag.Usage()
		os.Exit(2)
	}
	schema, err := relation.NewSchema(strings.Split(*schemaFlag, ","))
	if err != nil {
		fatal(err)
	}
	var depSet []*td.TD
	if *depsFile != "" {
		data, err := os.ReadFile(*depsFile)
		if err != nil {
			fatal(err)
		}
		ds, err := td.ParseSet(schema, string(data))
		if err != nil {
			fatal(err)
		}
		depSet = append(depSet, ds...)
	}
	for i, s := range deps {
		d, err := td.Parse(schema, s, fmt.Sprintf("dep%d", i+1))
		if err != nil {
			fatal(err)
		}
		depSet = append(depSet, d)
	}
	goal, err := td.Parse(schema, *goalFlag, "D0")
	if err != nil {
		fatal(err)
	}

	budget := core.DefaultBudget()
	budget.Chase = chase.Options{MaxRounds: *rounds, MaxTuples: *tuples, SemiNaive: true, Trace: *trace}
	budget.FiniteDB = finitemodel.Options{MaxTuples: *fmTuples}

	fmt.Printf("schema: %s\n", schema)
	fmt.Printf("|D| = %d dependencies (all full: %v)\n", len(depSet), chase.AllFull(depSet))
	fmt.Printf("D0:  %s\n\n", goal.Format())

	res, err := core.Infer(depSet, goal, budget)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("verdict: %s\n", res.Verdict)
	if res.Chase != nil {
		st := res.Chase.Stats
		fmt.Printf("chase: %d rounds, %d tuples added, %d triggers fired, fixpoint=%v\n",
			st.Rounds, st.TuplesAdded, st.TriggersFired, res.Chase.FixpointReached)
		if *trace && res.Verdict == core.Implied {
			fmt.Println("proof trace:")
			for _, f := range res.Chase.Trace {
				fmt.Printf("  round %d: %s adds %v\n", f.Round, depSet[f.Dep].Name(), f.Tuple)
			}
		}
	}
	if res.Counterexample != nil {
		fmt.Printf("finite counterexample (%d tuples):\n%s", res.Counterexample.Len(), res.Counterexample.String())
	}
	if res.Verdict == core.Unknown {
		fmt.Println("inconclusive within budget — raise -rounds / -tuples / -cx-tuples.")
		fmt.Println("(TD inference is undecidable; no budget eliminates this outcome in general.)")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tdinfer:", err)
	os.Exit(1)
}

// Command tdinfer runs the dual semidecision procedure for template
// dependency inference: given a set D of TDs and a goal TD D0 over a shared
// schema, it chases D0's frozen antecedents under D (semideciding "D
// implies D0") and, if the chase is inconclusive, enumerates small finite
// databases looking for a counterexample (semideciding "D0 fails finitely").
//
// Example:
//
//	tdinfer -schema SUPPLIER,STYLE,SIZE \
//	        -dep "R(a,b,c) & R(a,b',c') -> R(a*,b,c')" \
//	        -goal "R(a,b,c) & R(a,b',c') -> R(a*,b,c')"
//
// Dependencies may also be read one per line from a file via -deps, or the
// whole instance generated from a semigroup presentation preset via
// -preset (power|twostep|gap|chain:N|nilpotent:M|tower:K) through the
// Gurevich–Lewis reduction.
//
// Resource governance: -rounds/-tuples meter the chase, -deadline bounds
// wall-clock time, and Ctrl-C interrupts the run at the next governor
// checkpoint. An interrupted run exits 0 with an honest "unknown" verdict,
// partial statistics, and (with -trace) a well-formed replayable trace.
//
// Observability: -trace FILE writes the structured event stream (JSONL, see
// docs/OBSERVABILITY.md) of the whole run; -progress keeps a live one-line
// status on stderr; -depstats prints a per-dependency work table; -proof
// prints the chase proof trace when the verdict is "implied" and the
// counter-database (plus, for -preset runs, the witness semigroup's
// multiplication table when one exists) when it is "finite-counterexample".
//
// Certificates: -cert FILE writes the verdict's verifiable proof object as
// versioned JSON; `tdcheck -verify FILE` re-checks it independently of the
// engines that produced it.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"time"

	"templatedep/internal/budget"
	"templatedep/internal/cert"
	"templatedep/internal/chase"
	"templatedep/internal/core"
	"templatedep/internal/obs"
	"templatedep/internal/portfolio"
	"templatedep/internal/psearch"
	"templatedep/internal/reduction"
	"templatedep/internal/relation"
	"templatedep/internal/search"
	"templatedep/internal/td"
	"templatedep/internal/words"
)

type depFlags []string

func (d *depFlags) String() string     { return strings.Join(*d, "; ") }
func (d *depFlags) Set(s string) error { *d = append(*d, s); return nil }

func main() {
	var (
		schemaFlag = flag.String("schema", "", "comma-separated attribute names")
		depsFile   = flag.String("deps", "", "file with one TD per line (optional)")
		goalFlag   = flag.String("goal", "", "goal TD D0")
		preset     = flag.String("preset", "", "build D and D0 from a presentation preset via the reduction: power|twostep|gap|chain:N|nilpotent:M|tower:K")
		rounds     = flag.Int("rounds", 64, "chase round budget")
		tuples     = flag.Int("tuples", 100000, "chase tuple budget")
		fmTuples   = flag.Int("cx-tuples", 4, "counterexample enumeration: max tuples")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines for the chase and the counterexample enumeration (results are identical for every value; 1 = serial)")
		pruneFlag  = flag.String("prune", "symmetry", "counterexample enumeration symmetry breaking: symmetry|none")
		deadline   = flag.Duration("deadline", 0, "wall-clock budget for the whole run (0 = none)")
		engine     = flag.String("engine", "portfolio", "inference engine: portfolio (adaptive budget reallocation across all arms) or race (static sequential dual run)")
		proof      = flag.Bool("proof", false, "print the proof object: the chase trace for implied, the counter-database and witness table for finite-counterexample")
		certFile   = flag.String("cert", "", "write the verdict's verifiable certificate (JSON) to FILE; re-check with tdcheck -verify FILE")
		traceFile  = flag.String("trace", "", "write the structured event stream to FILE as JSONL (see docs/OBSERVABILITY.md)")
		progress   = flag.Bool("progress", false, "live progress line on stderr")
		depStats   = flag.Bool("depstats", false, "print per-dependency chase statistics")
		deps       depFlags
	)
	flag.Var(&deps, "dep", "a TD (repeatable)")
	flag.Parse()

	if *engine != "portfolio" && *engine != "race" {
		fatal(fmt.Errorf("unknown -engine %q (want portfolio or race)", *engine))
	}
	if *preset == "" && (*schemaFlag == "" || *goalFlag == "") {
		fmt.Fprintln(os.Stderr, "tdinfer: either -preset or both -schema and -goal are required")
		flag.Usage()
		os.Exit(2)
	}
	var (
		schema *relation.Schema
		depSet []*td.TD
		goal   *td.TD
		err    error
		// presetPres and presetInst are set for -preset runs: the source
		// presentation and its reduction, used by the -proof epilogue to
		// search for a semigroup-level witness on finite counterexamples.
		presetPres *words.Presentation
		presetInst *reduction.Instance
	)
	if *preset != "" {
		p, err := words.Preset(*preset)
		if err != nil {
			fatal(err)
		}
		in, err := reduction.Build(p)
		if err != nil {
			fatal(err)
		}
		schema, depSet, goal = in.Schema, in.D, in.D0
		presetPres, presetInst = p, in
	} else {
		schema, err = relation.NewSchema(strings.Split(*schemaFlag, ","))
		if err != nil {
			fatal(err)
		}
		if *depsFile != "" {
			data, err := os.ReadFile(*depsFile)
			if err != nil {
				fatal(err)
			}
			ds, err := td.ParseSet(schema, string(data))
			if err != nil {
				fatal(err)
			}
			depSet = append(depSet, ds...)
		}
		for i, s := range deps {
			d, err := td.Parse(schema, s, fmt.Sprintf("dep%d", i+1))
			if err != nil {
				fatal(err)
			}
			depSet = append(depSet, d)
		}
		goal, err = td.Parse(schema, *goalFlag, "D0")
		if err != nil {
			fatal(err)
		}
	}

	// Ctrl-C cancels the governor's context; every semi-procedure notices
	// at its next checkpoint and returns partial results with an honest
	// "unknown" verdict. A second Ctrl-C kills the process the usual way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}

	b := core.DefaultBudget()
	b.Governor = budget.New(ctx, budget.Limits{})
	b.Certify = *certFile != "" || *proof
	b.Chase = chase.Options{
		Governor:  b.Governor.Child(budget.Limits{Rounds: *rounds, Tuples: *tuples}),
		SemiNaive: true, Trace: *proof, PerDepStats: *depStats,
	}
	b.FiniteDB.Sizes = budget.Range{Lo: 1, Hi: *fmTuples}
	b.Chase.Workers = *workers
	b.FiniteDB.Workers = *workers
	prune, err := psearch.ParsePrune(*pruneFlag)
	if err != nil {
		fatal(err)
	}
	b.FiniteDB.Prune = prune

	var sinks []obs.Sink
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fatal(err)
		}
		w := bufio.NewWriter(f)
		jl := obs.NewJSONLSink(w)
		defer func() {
			if err := jl.Err(); err != nil {
				fatal(err)
			}
			if err := w.Flush(); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		sinks = append(sinks, jl)
	}
	var prog *obs.ProgressSink
	if *progress {
		prog = obs.NewProgressSink(os.Stderr)
		defer prog.Close()
		sinks = append(sinks, prog)
	}
	b.Sink = obs.Multi(sinks...)

	fmt.Printf("schema: %s\n", schema)
	fmt.Printf("|D| = %d dependencies (all full: %v)\n", len(depSet), chase.AllFull(depSet))
	fmt.Printf("D0:  %s\n\n", goal.Format())

	start := time.Now()
	var res core.InferenceResult
	if *engine == "portfolio" {
		pres, perr := portfolio.Infer(depSet, goal, b.PortfolioOptions())
		if perr != nil {
			fatal(perr)
		}
		res = core.InferenceResult{Verdict: core.VerdictOf(pres.Verdict),
			Chase: pres.Chase, Counterexample: pres.Counterexample}.WithCert(pres.Cert())
		if pres.Winner != "" {
			fmt.Printf("winner: %s arm (%d scheduler ticks, %d reallocation decisions)\n",
				pres.Winner, pres.Ticks, len(pres.Decisions))
		}
	} else {
		res, err = core.Infer(depSet, goal, b)
		if err != nil {
			fatal(err)
		}
	}
	fmt.Printf("verdict: %s\n", res.Verdict)
	if res.Chase != nil {
		st := res.Chase.Stats
		fmt.Printf("chase: %d rounds, %d tuples added, %d triggers fired, fixpoint=%v\n",
			st.Rounds, st.TuplesAdded, st.TriggersFired, res.Chase.FixpointReached)
		if res.Chase.Budget.Stopped() {
			fmt.Printf("chase stopped by budget: %s (partial results above)\n", res.Chase.Budget)
		}
		if *depStats {
			fmt.Println("per-dependency chase work:")
			for i, ds := range st.PerDep {
				fmt.Printf("  %-12s matched=%-6d fired=%-6d added=%-6d nulls=%d\n",
					depSet[i].Name(), ds.Matched, ds.Fired, ds.Added, ds.Nulls)
			}
		}
	}
	if *proof && res.Verdict == core.Implied {
		switch {
		case res.Chase != nil && len(res.Chase.Trace) > 0:
			fmt.Println("proof trace:")
			for _, f := range res.Chase.Trace {
				fmt.Printf("  round %d: %s adds %v\n", f.Round, depSet[f.Dep].Name(), f.Tuple)
			}
		case res.Cert() != nil && res.Cert().Chase != nil:
			// The winning arm ran untraced (the adaptive portfolio's chase
			// keeps its snapshots warm-state eligible); the certifying
			// replay's trace is the proof.
			fmt.Println("proof trace (from certificate replay):")
			for _, s := range res.Cert().Chase.Steps {
				fmt.Printf("  %s adds %v\n", depSet[s.Dep].Name(), s.Tuple)
			}
		}
	}
	if res.Counterexample != nil {
		fmt.Printf("finite counterexample (%d tuples):\n%s", res.Counterexample.Len(), res.Counterexample.String())
	}
	if *proof && res.Verdict == core.FiniteCounterexample {
		printCounterexampleProof(res, presetPres, presetInst, b)
	}
	if *certFile != "" {
		c := res.Cert()
		if c == nil {
			fatal(fmt.Errorf("verdict %s produced no certificate (unknown verdicts are never certified)", res.Verdict))
		}
		data, err := c.Encode()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*certFile, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("certificate: kind=%s written to %s (re-check with: tdcheck -verify %s)\n", c.Kind, *certFile, *certFile)
	}
	if res.Verdict == core.Unknown {
		switch ctx.Err() {
		case context.Canceled:
			fmt.Printf("interrupted after %v — partial results only.\n", time.Since(start).Round(time.Millisecond))
		case context.DeadlineExceeded:
			fmt.Printf("deadline %v reached — partial results only.\n", *deadline)
		default:
			fmt.Println("inconclusive within budget — raise -rounds / -tuples / -cx-tuples.")
		}
		fmt.Println("(TD inference is undecidable; no budget eliminates this outcome in general.)")
	}
}

// printCounterexampleProof renders the finite-counterexample proof object:
// the counter-database from the certificate, and for -preset runs also the
// semigroup-level view — the witness multiplication table when the model
// search finds one, or an honest note that none exists within budget (the
// database-level and cancellation-model counterexample notions genuinely
// differ, e.g. on the gap preset).
func printCounterexampleProof(res core.InferenceResult, p *words.Presentation, in *reduction.Instance, b core.Budget) {
	if c := res.Cert(); c != nil && c.Model != nil {
		fmt.Println("counterexample proof:")
		printIndented(cert.DescribeModel(c.Model))
	} else if res.Counterexample != nil {
		fmt.Println("counterexample proof: see the database above")
	}
	if p == nil || in == nil {
		return
	}
	sres, err := search.FindCounterModel(p, b.ModelSearch)
	if err != nil || sres.Interpretation == nil {
		fmt.Println("no semigroup witness within the model-search budget — the counterexample is database-level only")
		return
	}
	wit := sres.Interpretation
	m := &cert.Model{Table: wit.Table.Rows(), Assign: make(map[string]int, len(wit.Assign))}
	for s, e := range wit.Assign {
		m.Assign[wit.Alphabet.Name(s)] = int(e)
	}
	printIndented(cert.DescribeModel(m))
}

func printIndented(s string) {
	for _, line := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		fmt.Println("  " + line)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tdinfer:", err)
	os.Exit(1)
}

// Command tmrun drives the Turing-machine end of the undecidability
// pipeline: simulate one of the bundled machines, encode its halting
// problem as a semigroup presentation, and optionally push it through the
// Gurevich–Lewis reduction and the word-problem semi-procedure.
//
//	tmrun -machine write-one -analyze
//	tmrun -machine scan -input "1 1 1"
//	tmrun -machine forever -steps 100
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"templatedep/internal/budget"
	"templatedep/internal/reduction"
	"templatedep/internal/tm"
	"templatedep/internal/words"
)

func main() {
	var (
		machine  = flag.String("machine", "write-one", "machine: write-one|scan|flip-flop|forever")
		inputStr = flag.String("input", "", "space-separated tape symbols (integers)")
		steps    = flag.Int("steps", 1000, "simulation step budget")
		analyze  = flag.Bool("analyze", false, "run the reduction + word-problem semi-procedure")
		maxWords = flag.Int("max-words", 500000, "derivation search word budget for -analyze")
	)
	flag.Parse()

	// Ctrl-C cancels the governor's context; the derivation search notices
	// at its next dequeued word and reports unknown with partial counts.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	m, err := machineByName(*machine)
	if err != nil {
		fatal(err)
	}
	var input []int
	for _, f := range strings.Fields(*inputStr) {
		v, err := strconv.Atoi(f)
		if err != nil {
			fatal(fmt.Errorf("bad input symbol %q", f))
		}
		input = append(input, v)
	}

	halted, n, cfg, err := m.Run(input, *steps)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("machine %s on input %v: halted=%v after %d steps; tape %v, head %d, state %d\n",
		*machine, input, halted, n, cfg.Tape, cfg.Head, cfg.State)

	p, err := tm.EncodePresentation(m, input)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("encoded presentation: %d symbols, %d equations\n", p.Alphabet.Size(), len(p.Equations))

	if !*analyze {
		return
	}
	in, err := reduction.Build(p)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("reduction: %d attributes, |D| = %d, max antecedents %d\n",
		in.Schema.Width(), len(in.D), in.MaxAntecedents())
	res := words.DeriveGoal(in.Pres, words.ClosureOptions{
		Governor:  budget.New(ctx, budget.Limits{Words: *maxWords}),
		LengthCap: 16,
	})
	fmt.Printf("word problem A0 = 0: %s (%d words explored)\n", res.Verdict, res.WordsExplored)
	if res.Budget.Stopped() {
		fmt.Printf("search stopped by budget: %s (partial results)\n", res.Budget)
	}
	if res.Verdict == words.Derivable {
		fmt.Printf("derivation (%d steps) certifies, via Reduction Theorem (A), that D |= D0\n", res.Derivation.Len())
	}
}

func machineByName(name string) (*tm.TM, error) {
	switch name {
	case "write-one":
		return tm.WriteOneAndHalt(), nil
	case "scan":
		return tm.ScanRightAndHalt(), nil
	case "flip-flop":
		return tm.FlipFlopAndHalt(), nil
	case "forever":
		return tm.RunForever(), nil
	default:
		return nil, fmt.Errorf("unknown machine %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tmrun:", err)
	os.Exit(1)
}

// Package templatedep_test holds the benchmark harness: one benchmark per
// experiment of DESIGN.md's experiment index (F1–F3 reproduce the paper's
// figures, E1–E9 its checkable claims, plus the ablations of §4). The
// cmd/tdbench tool runs the same experiments in report form and regenerates
// EXPERIMENTS.md.
package templatedep_test

import (
	"fmt"
	"templatedep/internal/budget"
	"testing"

	"templatedep/internal/chase"
	"templatedep/internal/core"
	"templatedep/internal/diagram"
	"templatedep/internal/eid"
	"templatedep/internal/finitemodel"
	"templatedep/internal/reduction"
	"templatedep/internal/relation"
	"templatedep/internal/search"
	"templatedep/internal/semigroup"
	"templatedep/internal/tableau"
	"templatedep/internal/td"
	"templatedep/internal/tm"
	"templatedep/internal/words"
)

// F1: Figure 1 — diagram <-> TD round trip on the garment dependency.
func BenchmarkFig1RoundTrip(b *testing.B) {
	_, fig1 := td.GarmentExample()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := diagram.FromTD(fig1)
		d, err := g.TD("fig1")
		if err != nil {
			b.Fatal(err)
		}
		if d.NumAntecedents() != 2 {
			b.Fatal("shape")
		}
	}
}

// F2: Figure 2 — bridge construction for words of growing length.
func BenchmarkFig2Bridge(b *testing.B) {
	p := words.TwoStepPresentation()
	in := reduction.MustBuild(p)
	alpha := p.Alphabet
	for _, k := range []int{1, 4, 16, 64} {
		w := make(words.Word, k)
		for i := range w {
			if i%2 == 0 {
				w[i] = alpha.MustSymbol("b")
			} else {
				w[i] = alpha.MustSymbol("c")
			}
		}
		b.Run(fmt.Sprintf("len=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				br, err := in.BuildBridge(w)
				if err != nil {
					b.Fatal(err)
				}
				if br.Tableau.Len() != 2*k+1 {
					b.Fatal("shape")
				}
			}
		})
	}
}

// F3: Figure 3 — building D1..D4 + D0 from presentations of growing size.
func BenchmarkFig3Construction(b *testing.B) {
	for _, tc := range []struct {
		name string
		p    *words.Presentation
	}{
		{"power", words.PowerPresentation()},
		{"chain4", words.ChainPresentation(4)},
		{"nilpotent4", words.NilpotentSafePresentation(4)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				in, err := reduction.Build(tc.p)
				if err != nil {
					b.Fatal(err)
				}
				if in.MaxAntecedents() != 5 {
					b.Fatal("antecedent bound violated")
				}
			}
		})
	}
}

// E1: Reduction Theorem (A) — the chase proves D |= D0 for derivable
// presentations; chase effort scales with derivation length.
func BenchmarkReductionDirectionA(b *testing.B) {
	for _, tc := range []struct {
		name string
		p    *words.Presentation
	}{
		{"twostep", words.TwoStepPresentation()},
		{"chain1", words.ChainPresentation(1)},
	} {
		in := reduction.MustBuild(tc.p)
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := chase.Implies(in.D, in.D0, chase.Options{Governor: budget.New(nil, budget.Limits{Rounds: 12, Tuples: 60000}), SemiNaive: true})
				if err != nil {
					b.Fatal(err)
				}
				if res.Verdict != chase.Implied {
					b.Fatalf("verdict %v", res.Verdict)
				}
				b.ReportMetric(float64(res.Stats.Rounds), "rounds")
				b.ReportMetric(float64(res.Instance.Len()), "tuples")
			}
		})
	}
}

// E2: Reduction Theorem (B) — counter-model construction and verification;
// model size scales with |G|.
func BenchmarkReductionDirectionB(b *testing.B) {
	for m := 1; m <= 3; m++ {
		wit, p, err := semigroup.NilpotentInterpretationForPowers(m)
		if err != nil {
			b.Fatal(err)
		}
		in := reduction.MustBuild(p)
		b.Run(fmt.Sprintf("nilpotent%d", m), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cm, err := in.BuildCounterModel(wit)
				if err != nil {
					b.Fatal(err)
				}
				if err := in.Verify(cm); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(cm.Instance.Len()), "db-tuples")
			}
		})
	}
}

// E3: the paper's size claims — 2n+2 attributes, at most five antecedents —
// measured across a family of instances.
func BenchmarkInstanceShape(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for n := 1; n <= 4; n++ {
			p := words.NilpotentSafePresentation(n)
			in, err := reduction.Build(p)
			if err != nil {
				b.Fatal(err)
			}
			if in.Schema.Width() != 2*p.Alphabet.Size()+2 {
				b.Fatal("attribute count")
			}
			if in.MaxAntecedents() != 5 {
				b.Fatal("antecedent bound")
			}
		}
	}
}

// E4: (2,1)-normalization cost and expansion factor.
func BenchmarkNormalization(b *testing.B) {
	a := words.MustAlphabet([]string{"A0", "P", "Q", "R", "S", "0"}, "A0", "0")
	mk := func(k int) *words.Presentation {
		// One long equation P^k = Q and a few medium ones.
		lhs := make(words.Word, k)
		for i := range lhs {
			lhs[i] = a.MustSymbol("P")
		}
		eqs := []words.Equation{
			words.Eq(lhs, words.W(a.MustSymbol("Q"))),
			words.Eq(words.MustParseWord(a, "Q R S"), words.MustParseWord(a, "P Q")),
		}
		p, err := words.NewPresentation(a, eqs)
		if err != nil {
			b.Fatal(err)
		}
		return p
	}
	for _, k := range []int{4, 16, 64} {
		p := mk(k)
		b.Run(fmt.Sprintf("lhs=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				n, err := words.Normalize(p)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(len(n.Presentation.Equations)), "eqs-out")
			}
		})
	}
}

// E5: TM -> semi-Thue -> presentation pipeline; the derivation certifying
// halting is found mechanically.
func BenchmarkTMPipeline(b *testing.B) {
	for _, tc := range []struct {
		name  string
		m     *tm.TM
		input []int
	}{
		{"write-one", tm.WriteOneAndHalt(), nil},
		{"flip-flop", tm.FlipFlopAndHalt(), nil},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p, err := tm.EncodePresentation(tc.m, tc.input)
				if err != nil {
					b.Fatal(err)
				}
				res := words.DeriveGoal(p, words.ClosureOptions{Governor: budget.New(nil, budget.Limits{Words: 200000})})
				if res.Verdict != words.Derivable {
					b.Fatalf("verdict %v", res.Verdict)
				}
				b.ReportMetric(float64(res.Derivation.Len()), "deriv-steps")
			}
		})
	}
}

// E6: the decidable contrast — full TDs; chase decision time vs antecedent
// count of the goal.
func BenchmarkFullTDDecision(b *testing.B) {
	s := relation.MustSchema("A", "B", "C")
	join := td.MustParse(s, "R(a, b, c) & R(a, b', c') -> R(a, b, c')", "join")
	for _, k := range []int{2, 3, 4, 5} {
		goalText := ""
		for i := 0; i < k; i++ {
			if i > 0 {
				goalText += " & "
			}
			goalText += fmt.Sprintf("R(a, b%d, c%d)", i, i)
		}
		goalText += fmt.Sprintf(" -> R(a, b0, c%d)", k-1)
		goal := td.MustParse(s, goalText, "goal")
		b.Run(fmt.Sprintf("antecedents=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := chase.Implies([]*td.TD{join}, goal, chase.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				if res.Verdict != chase.Implied {
					b.Fatalf("verdict %v", res.Verdict)
				}
			}
		})
	}
}

// E7: EID satisfaction (the Chandra et al. comparison class) on growing
// databases, plus the EID chase proving the projection implications.
func BenchmarkEIDChase(b *testing.B) {
	s, e := eid.PaperExample()
	for _, n := range []int{4, 16, 64} {
		inst := relation.NewInstance(s)
		for i := 0; i < n; i++ {
			inst.MustAdd(relation.Tuple{relation.Value(i % 4), relation.Value(i % 3), relation.Value(i % 5)})
		}
		b.Run(fmt.Sprintf("satisfies/tuples=%d", inst.Len()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e.Satisfies(inst)
			}
		})
	}
	projA := eid.FromTD(td.MustParse(s, "R(a, b, c) & R(a, b', c') -> R(x, b, c)", "projA"))
	b.Run("implies/projection", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := eid.Implies([]*eid.EID{e}, projA, eid.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			if res.Verdict != eid.Implied {
				b.Fatalf("verdict %v", res.Verdict)
			}
		}
	})
}

// E8: adjoining an identity preserves cancellation — the claim inside the
// proof of (B), checked over growing nilpotent semigroups.
func BenchmarkAdjoinIdentity(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		g := semigroup.NilpotentCyclic(n)
		b.Run(fmt.Sprintf("order=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				gp, _ := semigroup.AdjoinIdentity(g)
				if err := semigroup.CheckCancellation(gp); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E9: the dual semidecision on the three canonical instances — who
// terminates on what.
func BenchmarkDualSemidecision(b *testing.B) {
	bud := core.DefaultBudget()
	bud.Chase = chase.Options{Governor: budget.New(nil, budget.Limits{Rounds: 12, Tuples: 60000}), SemiNaive: true}
	bud.Closure = words.ClosureOptions{Governor: budget.New(nil, budget.Limits{Words: 3000}), LengthCap: 10}
	bud.ModelSearch = search.Options{Orders: budget.Range{Lo: 2, Hi: 4}, Governor: budget.New(nil, budget.Limits{Nodes: 300000})}
	bud.FiniteDB = finitemodel.Options{Sizes: budget.Range{Lo: 1, Hi: 2}}
	for _, tc := range []struct {
		name string
		p    *words.Presentation
		want core.Verdict
	}{
		{"twostep/implied", words.TwoStepPresentation(), core.Implied},
		{"power/counterexample", words.PowerPresentation(), core.FiniteCounterexample},
		{"gap/unknown", words.IdempotentGapPresentation(), core.Unknown},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := core.AnalyzePresentation(tc.p, bud)
				if err != nil {
					b.Fatal(err)
				}
				if res.Verdict != tc.want {
					b.Fatalf("verdict %v, want %v", res.Verdict, tc.want)
				}
			}
		})
	}
}

// Ablation: semi-naive vs naive trigger enumeration in the chase.
func BenchmarkChaseSchedulers(b *testing.B) {
	s := relation.MustSchema("A", "B", "C")
	join := td.MustParse(s, "R(a, b, c) & R(a, b', c') -> R(a, b, c')", "join")
	start := relation.NewInstance(s)
	for i := 0; i < 6; i++ {
		start.MustAdd(relation.Tuple{0, relation.Value(i), relation.Value(i)})
	}
	for _, semiNaive := range []bool{false, true} {
		name := "naive"
		if semiNaive {
			name = "semi-naive"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e, err := chase.NewEngine(s, []*td.TD{join}, chase.Options{Governor: budget.New(nil, budget.Limits{Rounds: 50, Tuples: 10000}), SemiNaive: semiNaive})
				if err != nil {
					b.Fatal(err)
				}
				res := e.Chase(start, nil)
				if !res.FixpointReached {
					b.Fatal("no fixpoint")
				}
				b.ReportMetric(float64(res.Stats.HomomorphismsSeen), "homs")
			}
		})
	}
}

// Ablation: restricted vs oblivious chase variants on a terminating full-TD
// workload.
func BenchmarkChaseVariants(b *testing.B) {
	s := relation.MustSchema("A", "B", "C")
	join := td.MustParse(s, "R(a, b, c) & R(a, b', c') -> R(a, b, c')", "join")
	start := relation.NewInstance(s)
	for i := 0; i < 4; i++ {
		start.MustAdd(relation.Tuple{0, relation.Value(i), relation.Value(i)})
	}
	for _, v := range []chase.Variant{chase.Restricted, chase.Oblivious} {
		b.Run(v.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e, err := chase.NewEngine(s, []*td.TD{join}, chase.Options{Governor: budget.New(nil, budget.Limits{Rounds: 50, Tuples: 10000}), Variant: v, SemiNaive: true})
				if err != nil {
					b.Fatal(err)
				}
				res := e.Chase(start, nil)
				if !res.FixpointReached {
					b.Fatal("no fixpoint")
				}
				b.ReportMetric(float64(res.Stats.TriggersFired), "fired")
			}
		})
	}
}

// Ablation: sequential vs parallel trigger enumeration within chase rounds.
func BenchmarkChaseWorkers(b *testing.B) {
	s := relation.MustSchema("A", "B", "C")
	deps, err := td.ParseSet(s, `
join:   R(a, b, c) & R(a, b', c') -> R(a, b, c')
mirror: R(a, b, c) & R(a', b, c') -> R(a, b, c')
tail:   R(a, b, c) & R(a', b', c) -> R(a, b', c)
`)
	if err != nil {
		b.Fatal(err)
	}
	start := relation.NewInstance(s)
	for i := 0; i < 8; i++ {
		start.MustAdd(relation.Tuple{relation.Value(i % 2), relation.Value(i % 3), relation.Value(i)})
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e, err := chase.NewEngine(s, deps, chase.Options{Governor: budget.New(nil, budget.Limits{Rounds: 50, Tuples: 20000}), SemiNaive: true, Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				res := e.Chase(start, nil)
				if !res.FixpointReached {
					b.Fatal("no fixpoint")
				}
			}
		})
	}
}

// Ablation: index-driven homomorphism join vs the naive nested-loop scan,
// on the Reduction Theorem implication workload (the F2/F3 bridge chases)
// at growing derivation depth.
func BenchmarkJoinStrategies(b *testing.B) {
	for _, tc := range []struct {
		name string
		p    *words.Presentation
	}{
		{"chain1", words.ChainPresentation(1)},
		{"chain2", words.ChainPresentation(2)},
		{"chain3", words.ChainPresentation(3)},
	} {
		in := reduction.MustBuild(tc.p)
		for _, join := range []chase.JoinStrategy{chase.JoinIndex, chase.JoinScan} {
			b.Run(fmt.Sprintf("%s/%s", tc.name, join), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := chase.Implies(in.D, in.D0, chase.Options{
						Governor:  budget.New(nil, budget.Limits{Rounds: 32, Tuples: 200000}),
						SemiNaive: true, Join: join,
					})
					if err != nil {
						b.Fatal(err)
					}
					if res.Verdict != chase.Implied {
						b.Fatalf("verdict %v", res.Verdict)
					}
					b.ReportMetric(float64(res.Instance.Len()), "tuples")
				}
			})
		}
	}
}

// Ablation: the same join comparison on a dense full-TD closure, where the
// quadratic trigger space makes posting-list probing pay off most.
func BenchmarkJoinClosure(b *testing.B) {
	s := relation.MustSchema("A", "B", "C")
	join := td.MustParse(s, "R(a, b, c) & R(a, b', c') -> R(a, b, c')", "join")
	for _, n := range []int{8, 16, 32} {
		start := relation.NewInstance(s)
		for i := 0; i < n; i++ {
			start.MustAdd(relation.Tuple{relation.Value(i % 2), relation.Value(i), relation.Value(i)})
		}
		for _, strat := range []chase.JoinStrategy{chase.JoinIndex, chase.JoinScan} {
			b.Run(fmt.Sprintf("n=%d/%s", n, strat), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					e, err := chase.NewEngine(s, []*td.TD{join}, chase.Options{
						Governor:  budget.New(nil, budget.Limits{Rounds: 50, Tuples: 10000}),
						SemiNaive: true, Join: strat,
					})
					if err != nil {
						b.Fatal(err)
					}
					res := e.Chase(start, nil)
					if !res.FixpointReached {
						b.Fatal("no fixpoint")
					}
				}
			})
		}
	}
}

// Ablation: pruned backtracking homomorphism search vs brute-force
// enumeration of row-to-tuple maps.
func BenchmarkHomomorphismPruning(b *testing.B) {
	s := relation.MustSchema("A", "B", "C")
	tab := tableau.MustNew(s, []tableau.VarTuple{{0, 0, 0}, {0, 1, 1}, {1, 1, 2}})
	inst := relation.NewInstance(s)
	for i := 0; i < 24; i++ {
		inst.MustAdd(relation.Tuple{relation.Value(i % 3), relation.Value(i % 4), relation.Value(i)})
	}
	b.Run("pruned", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tab.CountHomomorphisms(inst, nil)
		}
	})
	b.Run("brute", func(b *testing.B) {
		b.ReportAllocs()
		tuples := inst.Tuples()
		for i := 0; i < b.N; i++ {
			count := 0
			for _, t0 := range tuples {
				for _, t1 := range tuples {
					for _, t2 := range tuples {
						if t0[0] == t1[0] && t1[1] == t2[1] {
							count++
						}
					}
				}
			}
			_ = count
		}
	})
}

// Ablation: posting-list-indexed subsumption check vs linear scan.
func BenchmarkRowSatisfiable(b *testing.B) {
	s := relation.MustSchema("A", "B", "C")
	tab := tableau.MustNew(s, []tableau.VarTuple{{0, 0, 0}})
	for _, n := range []int{16, 256, 4096} {
		inst := relation.NewInstance(s)
		for i := 0; i < n; i++ {
			inst.MustAdd(relation.Tuple{relation.Value(i % 50), relation.Value(i % 37), relation.Value(i)})
		}
		as := tableau.NewAssignment(tab)
		as[0][0] = 49 // rare value: the index pays off
		as[1][0] = 36
		b.Run(fmt.Sprintf("indexed/tuples=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tableau.RowSatisfiable(tab.Row(0), as, inst)
			}
		})
		b.Run(fmt.Sprintf("scan/tuples=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tableau.RowSatisfiableScan(tab.Row(0), as, inst)
			}
		})
	}
}

// Ablation: Light's associativity test vs the naive cubic check.
func BenchmarkAssociativity(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		g := semigroup.NilpotentCyclic(n)
		b.Run(fmt.Sprintf("light/order=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// New re-runs Light's test on construction.
				rows := make([][]semigroup.Elem, n)
				for x := 0; x < n; x++ {
					rows[x] = make([]semigroup.Elem, n)
					for y := 0; y < n; y++ {
						rows[x][y] = g.Mul(semigroup.Elem(x), semigroup.Elem(y))
					}
				}
				if _, err := semigroup.New(rows, "bench"); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("naive/order=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if !g.AssociativityNaive() {
					b.Fatal("not associative")
				}
			}
		})
	}
}

// Ablation: forward-only vs bidirectional derivation search. The A0 = 0
// goal's zero endpoint has a huge rewrite neighbourhood (absorption
// equations), so the two strategies trade places depending on the target.
func BenchmarkSearchStrategies(b *testing.B) {
	p := words.ChainPresentation(8)
	for _, tc := range []struct {
		name string
		run  func() words.Result
	}{
		{"forward/goal", func() words.Result { return words.DeriveGoal(p, words.DefaultClosureOptions()) }},
		{"bidirectional/goal", func() words.Result { return words.DeriveGoalBidirectional(p, words.DefaultClosureOptions()) }},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := tc.run()
				if res.Verdict != words.Derivable {
					b.Fatal("not derivable")
				}
				b.ReportMetric(float64(res.WordsExplored), "words")
			}
		})
	}
}

// Ablation: equational-closure BFS effort vs derivation length.
func BenchmarkWordClosure(b *testing.B) {
	for _, n := range []int{1, 4, 16} {
		p := words.ChainPresentation(n)
		b.Run(fmt.Sprintf("chain=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := words.DeriveGoal(p, words.DefaultClosureOptions())
				if res.Verdict != words.Derivable {
					b.Fatal("not derivable")
				}
				b.ReportMetric(float64(res.Derivation.Len()), "deriv-steps")
			}
		})
	}
}

package templatedep_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	"templatedep/internal/budget"
	"templatedep/internal/chase"
	"templatedep/internal/eid"
	"templatedep/internal/obs"
	"templatedep/internal/reduction"
	"templatedep/internal/relation"
	"templatedep/internal/words"
)

// replayMatches folds a JSONL trace and checks it reproduces the chase's
// own Stats — the partial-trace contract: however a run was cut short, the
// trace must still replay to exactly the numbers the run reported.
func replayMatches(t *testing.T, buf *bytes.Buffer, res chase.Result) obs.Totals {
	t.Helper()
	tot, err := obs.Replay(buf)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if tot.Rounds != st.Rounds {
		t.Errorf("rounds: replay %d, stats %d", tot.Rounds, st.Rounds)
	}
	if tot.TriggersMatched != st.TriggersMatched {
		t.Errorf("matched: replay %d, stats %d", tot.TriggersMatched, st.TriggersMatched)
	}
	if tot.TriggersFired != st.TriggersFired {
		t.Errorf("fired: replay %d, stats %d", tot.TriggersFired, st.TriggersFired)
	}
	if tot.TuplesAdded != st.TuplesAdded {
		t.Errorf("added: replay %d, stats %d", tot.TuplesAdded, st.TuplesAdded)
	}
	if tot.Homomorphisms != st.HomomorphismsSeen {
		t.Errorf("homs: replay %d, stats %d", tot.Homomorphisms, st.HomomorphismsSeen)
	}
	if got := tot.Verdicts["chase"]; got != res.Verdict.String() {
		t.Errorf("verdict: replay %q, run %q", got, res.Verdict)
	}
	return tot
}

// A run cancelled between rounds keeps the completed rounds' statistics and
// writes a closed trace. The goal callback runs once before the loop and
// once at the end of every completed round, so cancelling at its third
// invocation stops the run after exactly two rounds — deterministically,
// with no timers involved.
func TestCancelledChaseTraceReplaysToPartialStats(t *testing.T) {
	in := reduction.MustBuild(words.IdempotentGapPresentation())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var buf bytes.Buffer
	e, err := chase.NewEngine(in.Schema, in.D, chase.Options{
		Governor:  budget.New(ctx, budget.Limits{Rounds: 1000, Tuples: 1_000_000}),
		SemiNaive: true, Sink: obs.NewJSONLSink(&buf)})
	if err != nil {
		t.Fatal(err)
	}
	frozen, _ := in.D0.FrozenAntecedents()
	calls := 0
	res := e.Chase(frozen, func(*relation.Instance) bool {
		calls++
		if calls == 3 {
			cancel()
		}
		return false
	})
	if res.Verdict != chase.Unknown {
		t.Fatalf("verdict %v, want unknown", res.Verdict)
	}
	if res.Budget.Code != budget.CodeCancelled {
		t.Fatalf("budget outcome %v, want cancelled", res.Budget)
	}
	if res.Stats.Rounds != 2 {
		t.Errorf("rounds %d, want 2 (cancelled at the end of round 2)", res.Stats.Rounds)
	}
	tot := replayMatches(t, &buf, res)
	if got := tot.Stops["chase"]; got != "cancelled" {
		t.Errorf("replay stop %q, want %q", got, "cancelled")
	}
}

// A meter-exhausted run reports the spent resource and its trace says so.
func TestExhaustedChaseTraceReplaysToPartialStats(t *testing.T) {
	in := reduction.MustBuild(words.IdempotentGapPresentation())
	var buf bytes.Buffer
	res, err := chase.Implies(in.D, in.D0, chase.Options{
		Governor:  budget.New(nil, budget.Limits{Rounds: 3, Tuples: 1_000_000}),
		SemiNaive: true, Sink: obs.NewJSONLSink(&buf)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != chase.Unknown {
		t.Fatalf("verdict %v, want unknown", res.Verdict)
	}
	if res.Budget != budget.Exhausted(budget.Rounds) {
		t.Fatalf("budget outcome %v, want exhausted rounds", res.Budget)
	}
	if res.Stats.Rounds != 3 {
		t.Errorf("rounds %d, want 3", res.Stats.Rounds)
	}
	tot := replayMatches(t, &buf, res)
	if got := tot.Stops["chase"]; got != "exhausted:rounds" {
		t.Errorf("replay stop %q, want %q", got, "exhausted:rounds")
	}
}

// A wall-clock deadline can fire anywhere — between rounds, inside trigger
// enumeration, inside the merge, inside materialization. Wherever it lands,
// the run must return promptly with a deadline outcome and a trace that
// still replays to the reported partial Stats.
func TestDeadlineMidRoundTraceStaysClosed(t *testing.T) {
	in := reduction.MustBuild(words.IdempotentGapPresentation())
	g, cancel := budget.ForDuration(30*time.Millisecond, budget.Limits{Rounds: 1_000_000})
	defer cancel()
	var buf bytes.Buffer
	start := time.Now()
	res, err := chase.Implies(in.D, in.D0, chase.Options{
		Governor: g, SemiNaive: true, Sink: obs.NewJSONLSink(&buf)})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != chase.Unknown {
		t.Fatalf("verdict %v, want unknown", res.Verdict)
	}
	if res.Budget.Code != budget.CodeDeadline {
		t.Fatalf("budget outcome %v, want deadline", res.Budget)
	}
	// The gap instance diverges, so only the in-round checkpoints can stop
	// the run; a generous CI margin still catches a return to per-round-only
	// polling, under which a deep round takes minutes.
	if elapsed > 5*time.Second {
		t.Errorf("deadline overshoot: 30ms budget took %v", elapsed)
	}
	tot := replayMatches(t, &buf, res)
	if got := tot.Stops["chase"]; got != "deadline" {
		t.Errorf("replay stop %q, want %q", got, "deadline")
	}
}

// TDs are single-conclusion EIDs, so on a TD instance the two chase engines
// must agree under identical governors: same verdict, same round and tuple
// counts, and isomorphic result instances (fresh-null naming may differ).
func TestEIDChaseMatchesTDChaseUnderIdenticalGovernors(t *testing.T) {
	for _, tc := range []struct {
		name   string
		p      *words.Presentation
		limits budget.Limits
	}{
		{"twostep", words.TwoStepPresentation(), budget.Limits{Rounds: 12, Tuples: 1_000_000}},
		{"chain2", words.ChainPresentation(2), budget.Limits{Rounds: 12, Tuples: 1_000_000}},
		{"gap", words.IdempotentGapPresentation(), budget.Limits{Rounds: 3, Tuples: 1_000_000}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			in := reduction.MustBuild(tc.p)
			tres, err := chase.Implies(in.D, in.D0, chase.Options{
				Governor: budget.New(nil, tc.limits), SemiNaive: true})
			if err != nil {
				t.Fatal(err)
			}
			deps := make([]*eid.EID, len(in.D))
			for i, d := range in.D {
				deps[i] = eid.FromTD(d)
			}
			eres, err := eid.Implies(deps, eid.FromTD(in.D0), eid.Options{
				Governor: budget.New(nil, tc.limits)})
			if err != nil {
				t.Fatal(err)
			}
			if tres.Verdict.String() != eres.Verdict.String() {
				t.Fatalf("verdicts differ: td %v, eid %v", tres.Verdict, eres.Verdict)
			}
			if tres.Budget != eres.Budget {
				t.Errorf("budget outcomes differ: td %v, eid %v", tres.Budget, eres.Budget)
			}
			if tres.Stats.Rounds != eres.Rounds {
				t.Errorf("rounds differ: td %d, eid %d", tres.Stats.Rounds, eres.Rounds)
			}
			if tres.Stats.TuplesAdded != eres.TuplesAdded {
				t.Errorf("tuples added differ: td %d, eid %d", tres.Stats.TuplesAdded, eres.TuplesAdded)
			}
			if !relation.Isomorphic(tres.Instance, eres.Instance) {
				t.Errorf("result instances not isomorphic: td %d tuples, eid %d tuples",
					tres.Instance.Len(), eres.Instance.Len())
			}
		})
	}
}

module templatedep

go 1.22
